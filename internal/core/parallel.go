package core

import (
	"sync"

	"unisched/internal/sched"
	"unisched/internal/trace"
)

// Parallel is the §4.4 distributed-scheduler arrangement: multiple unified
// schedulers work concurrently, each responsible for a portion of the
// submitted pods, all reading the same cluster state. Because the members
// decide independently, their decisions can race on the same host; the
// Deployment Module resolves those conflicts (highest score deploys, the
// rest are re-dispatched), so simulations must run with
// sim.Config.ConflictResolve set.
type Parallel struct {
	Members []sched.Scheduler
	label   string
}

// NewParallel bundles the members into one scheduler facade.
func NewParallel(label string, members ...sched.Scheduler) *Parallel {
	if label == "" {
		label = "Parallel"
	}
	return &Parallel{Members: members, label: label}
}

// Name implements sched.Scheduler.
func (p *Parallel) Name() string { return p.label }

// Schedule implements sched.Scheduler: the batch is hash-partitioned
// across the members, which decide concurrently; decisions return in the
// input order.
func (p *Parallel) Schedule(pods []*trace.Pod, now int64) []sched.Decision {
	k := len(p.Members)
	if k == 0 {
		out := make([]sched.Decision, len(pods))
		for i, pod := range pods {
			out[i] = sched.Decision{Pod: pod, NodeID: -1, Reason: sched.ReasonOther}
		}
		return out
	}
	if k == 1 {
		return p.Members[0].Schedule(pods, now)
	}

	// Partition deterministically by pod ID so a pod always lands on the
	// same member across retries.
	parts := make([][]*trace.Pod, k)
	idx := make([][]int, k)
	for i, pod := range pods {
		m := pod.ID % k
		parts[m] = append(parts[m], pod)
		idx[m] = append(idx[m], i)
	}

	out := make([]sched.Decision, len(pods))
	var wg sync.WaitGroup
	for m := 0; m < k; m++ {
		if len(parts[m]) == 0 {
			continue
		}
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			ds := p.Members[m].Schedule(parts[m], now)
			for j, d := range ds {
				out[idx[m][j]] = d
			}
		}(m)
	}
	wg.Wait()
	return out
}
