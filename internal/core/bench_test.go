package core

import (
	"fmt"
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/trace"
)

// benchScoreSetup builds an Optum over one node carrying `residents` pods,
// with the reservation ledger initialized and the node's summary warm —
// the steady state a candidate evaluation runs in.
func benchScoreSetup(tb testing.TB, residents int) (*Optum, *cluster.NodeState, *trace.Pod) {
	cfg := trace.SmallConfig()
	cfg.NumNodes = 4
	w := trace.MustGenerate(cfg)
	prof := trainedProfiles(tb, w, 60)
	// Inflate capacity so admission passes at every resident count: the
	// benchmark must measure the full scoring path, not the cheap
	// over-capacity rejection.
	for _, n := range w.Nodes {
		n.Capacity = n.Capacity.Scale(float64(residents))
	}
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	o := New(c, prof, DefaultOptions(), 7)
	placed := 0
	for _, p := range w.Pods {
		if placed >= residents {
			break
		}
		if _, err := c.Place(p, 0, 0); err == nil {
			placed++
		}
	}
	if placed < residents {
		tb.Fatalf("placed %d of %d residents", placed, residents)
	}
	o.Schedule(nil, 0) // BeginBatch: the scan reads the reservation ledger
	n := c.Node(0)
	cand := w.Pods[len(w.Pods)-1]
	ScoreHostForTest(o, n, cand) // build the node's summary once
	return o, n, cand
}

// BenchmarkScoreHost measures one Eq. 11 candidate evaluation against
// growing resident populations. With incremental prediction summaries the
// per-candidate cost is O(extras) amortized — near-flat from 8 to 128
// residents — where the pre-summary implementation re-walked every resident
// pod per candidate.
func BenchmarkScoreHost(b *testing.B) {
	for _, residents := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("residents=%d", residents), func(b *testing.B) {
			o, n, cand := benchScoreSetup(b, residents)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ScoreHostForTest(o, n, cand)
			}
			b.StopTimer()
			hits, appends, rebuilds := o.Summaries().Counters()
			b.ReportMetric(float64(hits)/float64(b.N), "summary_hits/op")
			b.ReportMetric(float64(appends+rebuilds), "summary_maintenance_total")
		})
	}
}

// TestScoreHostAllocFree pins the tentpole's zero-allocation claim: a
// steady-state candidate evaluation (summary warm, app count within the
// stack scratch) must not allocate at all.
func TestScoreHostAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	o, n, cand := benchScoreSetup(t, 32)
	if avg := testing.AllocsPerRun(100, func() {
		ScoreHostForTest(o, n, cand)
	}); avg != 0 {
		t.Errorf("scoreHost allocates %v objects per call, want 0", avg)
	}
}

// TestFallbackFilterAllocFree pins the degraded-mode admission filter: its
// request chain is value-typed end to end.
func TestFallbackFilterAllocFree(t *testing.T) {
	o, n, cand := benchScoreSetup(t, 8)
	_ = o
	f := requestFallbackFit{memCap: 0.8}
	resv := trace.Resources{CPU: 0.5, Mem: 1 << 28}
	if avg := testing.AllocsPerRun(100, func() {
		f.Filter(n, cand, resv)
	}); avg != 0 {
		t.Errorf("requestFallbackFit.Filter allocates %v per call, want 0", avg)
	}
}
