// Package core implements Optum, the paper's unified data-center scheduler
// (§4): the Online Scheduler with its Resource Usage Predictor (Eq. 7-8),
// Interference Predictor (Eq. 9-10) and Node Selector (Eq. 11), the
// PPO-style host sampling that keeps scheduling scalable (§4.3.4), and the
// Deployment Module that resolves conflicts between parallel schedulers
// (§4.4).
package core

import (
	"math"
	"math/rand"
	"runtime"

	"unisched/internal/cluster"
	"unisched/internal/obs"
	"unisched/internal/pipeline"
	"unisched/internal/predictor"
	"unisched/internal/profiler"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// BlackoutSource reports whether the profilers currently have no (or stale)
// data for an application — a tracing-pipeline outage, typically injected
// by internal/chaos. While an application is blacked out, the Node Selector
// must not trust its profiles: Optum falls back to the conservative
// request-based score for affected pods instead of scoring garbage.
type BlackoutSource interface {
	Blacked(app string) bool
}

// Profiles bundles the Offline Profiler outputs the Online Scheduler
// consumes. ERO and Stats are live stores that keep updating while the
// scheduler runs; Models is the most recent training snapshot. Blackout,
// when non-nil, is the live data-availability signal gating all of them.
type Profiles struct {
	ERO    *profiler.EROStore
	Stats  *profiler.AppStatsStore
	Models *profiler.Models
	// Blackout, when non-nil, marks applications whose profiler data is
	// currently unavailable; Optum degrades to request-based scoring for
	// their pods.
	Blackout BlackoutSource
}

// Options are Optum's tunables with the evaluation's defaults.
type Options struct {
	// OmegaO and OmegaB weigh LS and BE interference in the objective
	// (Eq. 6/11); the evaluation settles on 0.7 / 0.3 (§5.5).
	OmegaO, OmegaB float64
	// SampleProb is the PPO host-sampling probability (§4.3.4 uses 0.05).
	SampleProb float64
	// MinCandidates floors the sampled candidate set on small clusters.
	MinCandidates int
	// MemCap caps predicted memory utilization per host (§5.1 uses 0.8 to
	// keep OOM risk negligible under memory over-commitment).
	MemCap float64
	// MAPEGate is the accuracy gate above which a BE application's profile
	// is ignored (§5.2 optimizes only BE apps with MAPE below 0.2).
	MAPEGate float64
	// Workers is the scoring parallelism (<=0 means GOMAXPROCS).
	Workers int
	// FullScan disables PPO sampling (ablation: score every host).
	FullScan bool
	// FullScanFallback enables a second-chance full scan when the PPO
	// sample contains no admissible host. It bounds worst-case waiting at
	// high occupancy (a pod can otherwise wait ticks purely because its
	// random subset missed the sparse admissible set) at the cost of
	// last-resort placements the sampled objective would have skipped.
	FullScanFallback bool
	// CPUOnlyScore replaces the joint CPUxmem utilization term of Eq. 11
	// with CPU utilization alone (ablation: memory-stranding comparison).
	CPUOnlyScore bool
	// UseTriples enables the §4.2.2 triple-wise ERO extension in the
	// resource usage predictor (requires profiles collected with
	// EROStore.EnableTriples).
	UseTriples bool
	// AbsoluteScore evaluates the per-host score of Eq. 11 literally: the
	// host's absolute joint utilization minus the absolute interference
	// level of every resident pod. The default (false) instead scores the
	// *change* in the Eq. 6 global objective the placement causes, which
	// is what a greedy maximizer of a global objective should compare: the
	// literal form charges every resident pod's interference level as a
	// constant penalty, biasing against occupied hosts and
	// de-consolidating the cluster (ablation in EXPERIMENTS.md).
	AbsoluteScore bool
}

// DefaultOptions returns the evaluation configuration.
func DefaultOptions() Options {
	return Options{
		OmegaO:        0.7,
		OmegaB:        0.3,
		SampleProb:    0.05,
		MinCandidates: 32,
		MemCap:        0.8,
		MAPEGate:      0.2,
	}
}

// Optum is the Online Scheduler. It implements sched.Scheduler.
type Optum struct {
	*sched.Base
	Opt      Options
	Profiles Profiles

	pred *predictor.Optum
	// sums caches per-node Eq. 7-8 prediction state so scoring appends only
	// the batch reservations and the candidate instead of re-walking every
	// resident pod (see predictor.SummaryStore for the exactness argument).
	sums *predictor.SummaryStore
	rng  *rand.Rand
	// Sampler scratch, reused across decisions. Sample runs serially on the
	// batch goroutine (only the per-node scan is parallel), and the returned
	// slice is consumed before the next decision starts.
	sampleOut, sampleIdx []int
	// Cached pipeline specs; option-derived fields are refreshed per batch.
	mainSpec, fallbackSpec *pipeline.Spec
}

// New builds an Optum scheduler over a cluster and profiler outputs.
func New(c *cluster.Cluster, prof Profiles, opt Options, seed int64) *Optum {
	if opt.OmegaO == 0 && opt.OmegaB == 0 {
		opt = DefaultOptions()
	}
	if opt.MinCandidates <= 0 {
		opt.MinCandidates = 32
	}
	if opt.MemCap <= 0 {
		opt.MemCap = 0.8
	}
	pred := predictor.NewOptum(prof.ERO)
	pred.UseTriples = opt.UseTriples
	return &Optum{
		Base:     sched.NewBase(c, seed),
		Opt:      opt,
		Profiles: prof,
		pred:     pred,
		sums:     predictor.NewSummaryStore(pred, c),
		rng:      rand.New(rand.NewSource(seed + 1)),
	}
}

// Name implements sched.Scheduler.
func (o *Optum) Name() string { return "Optum" }

// Predictor exposes the pairwise resource-usage predictor (used by the
// predictor-accuracy experiments).
func (o *Optum) Predictor() *predictor.Optum { return o.pred }

// Schedule implements sched.Scheduler: one greedy, objective-guided
// decision per pending pod, driven through the shared placement pipeline.
// The specs are cached; option-derived fields are refreshed per batch so
// option changes between batches still take effect.
func (o *Optum) Schedule(pods []*trace.Pod, now int64) []sched.Decision {
	o.BeginBatch()
	workers := o.Opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if o.mainSpec == nil {
		o.mainSpec = &pipeline.Spec{
			Eval:    optumEval{o},
			Sampler: ppoSampler{o},
			Preempt: true,
		}
		o.fallbackSpec = &pipeline.Spec{
			Filters: []pipeline.FilterPlugin{nil},
			Scores:  []pipeline.WeightedScore{{Plugin: sched.ReqAlignment{}, Weight: 1}},
			Preempt: true,
		}
	}
	o.mainSpec.FullScanFallback = o.Opt.FullScanFallback
	o.mainSpec.ScanWorkers = workers
	o.fallbackSpec.Filters[0] = requestFallbackFit{memCap: o.Opt.MemCap}
	main, fallback := o.mainSpec, o.fallbackSpec
	rec := o.Pipeline().Recorder()
	out := make([]sched.Decision, len(pods))
	for i, p := range pods {
		deg := o.degraded(p.AppID)
		if deg {
			// Degraded mode: with no usable profile the predicted-usage and
			// interference terms of Eq. 11 are meaningless, so admission
			// reverts to the conservative request-based rule (sum of
			// requests within capacity, memory under the cap) and scoring to
			// the production alignment heuristic. Strictly safer, strictly
			// less efficient — exactly the trade a scheduler should make
			// blind.
			out[i] = o.Select(p, fallback)
		} else {
			out[i] = o.Select(p, main)
		}
		if rec != nil {
			if dt := o.Pipeline().LastTrace(); dt != nil && dt.PodID == p.ID {
				o.attachEq11(rec, dt, p, out[i], deg)
			}
		}
	}
	o.sums.FlushStats(o.Pipeline().Stats())
	return out
}

// attachEq11 amends a sampled decision trace with the Eq. 11 score
// decomposition for the chosen host. It runs only on traced decisions:
// the winner is re-scored with the trace sink attached, reproducing the
// exact evaluation Select performed (the ledger already holds p on the
// winning node, so p is excluded from the reservation list). Degraded and
// preemption placements carry no prediction terms — the flag and the
// summary-cache counters still land on the trace.
func (o *Optum) attachEq11(rec *obs.Recorder, dt *obs.DecisionTrace, p *trace.Pod, d sched.Decision, degraded bool) {
	eq := &obs.Eq11{Degraded: degraded}
	eq.SummaryHits, eq.SummaryAppends, eq.SummaryRebuilds = o.sums.Counters()
	if !degraded && d.NodeID >= 0 && !d.NeedPreempt {
		n := o.Cluster.Node(d.NodeID)
		resv := o.ReservedPods(d.NodeID)
		trimmed := make([]*trace.Pod, 0, len(resv))
		for _, rp := range resv {
			if rp != p {
				trimmed = append(trimmed, rp)
			}
		}
		o.scoreHostResv(n, p, trimmed, eq)
	} else {
		eq.OmegaO, eq.OmegaB = o.Opt.OmegaO, o.Opt.OmegaB
	}
	rec.Amend(dt, func(t *obs.DecisionTrace) { t.Eq11 = eq })
}

// degraded reports whether the profilers cannot be trusted for the
// application right now: no trained models at all, or an active blackout.
func (o *Optum) degraded(app string) bool {
	if o.Profiles.Models == nil {
		return true
	}
	return o.Profiles.Blackout != nil && o.Profiles.Blackout.Blacked(app)
}

// requestFallbackFit is the degraded-mode admission: sum of requests
// within CPU capacity, request memory under the MemCap budget.
type requestFallbackFit struct {
	memCap float64
}

// FilterName implements pipeline.FilterPlugin.
func (requestFallbackFit) FilterName() string { return "RequestFallbackFit" }

// Filter implements pipeline.FilterPlugin.
func (f requestFallbackFit) Filter(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (bool, bool) {
	load := n.ReqSum().Add(resv).Add(p.Request)
	capc := n.Capacity()
	return load.CPU <= capc.CPU, load.Mem <= f.memCap*capc.Mem
}

// MinHeadroom implements pipeline.HeadroomBounder: both dimensions are
// request-based (memory against the MemCap fraction of capacity).
func (f requestFallbackFit) MinHeadroom(p *trace.Pod, minCap, maxCap trace.Resources) (trace.Resources, bool) {
	return trace.Resources{
		CPU: p.Request.CPU,
		Mem: pipeline.OvercommitBound(p.Request.Mem, f.memCap, minCap.Mem, maxCap.Mem),
	}, true
}

// optumEval is the Node Selector as a fused pipeline evaluation: Eq. 11's
// admission and scoring share the Eq. 7-8 usage prediction, so splitting
// them into Filter and Score plugins would predict twice.
type optumEval struct {
	o *Optum
}

// EvalName implements pipeline.EvalPlugin.
func (optumEval) EvalName() string { return "OptumNodeSelector" }

// RejectLabels implements pipeline.RejectLabeler: Optum admission fails
// on the ERO-predicted usage exceeding the per-dimension caps (Eq. 7-8
// feeding Eq. 11), not on raw request fit.
func (optumEval) RejectLabels() (string, string) { return "ERO cap (cpu)", "ERO cap (mem)" }

// Evaluate implements pipeline.EvalPlugin. Batch reservations are read
// from the pipeline ledger as whole pods (Eq. 7-8 pairing), not from the
// summed resv argument.
func (e optumEval) Evaluate(n *cluster.NodeState, p *trace.Pod, _ trace.Resources) (float64, bool, bool) {
	return e.o.scoreHost(n, p)
}

// ppoSampler is the §4.3.4 PPO-style random host partition as a pipeline
// sampling plugin: each scheduling decision scores only a random
// SampleProb fraction of the candidates (floored at MinCandidates), which
// keeps per-pod latency flat as the cluster grows. It reads the current
// Options on every call, so FullScan toggles apply immediately.
type ppoSampler struct {
	o *Optum
}

// SamplerName implements pipeline.SamplerPlugin.
func (ppoSampler) SamplerName() string { return "PPO" }

// Sample implements pipeline.SamplerPlugin.
func (s ppoSampler) Sample(_ *trace.Pod, cands []int) []int {
	o := s.o
	if o.Opt.FullScan {
		return cands
	}
	k := int(o.Opt.SampleProb * float64(len(cands)))
	if k < o.Opt.MinCandidates {
		k = o.Opt.MinCandidates
	}
	if k >= len(cands) {
		return cands
	}
	// Partial Fisher-Yates over a copy of indices, in buffers reused across
	// decisions (Sample is serial; the result is consumed per decision).
	if cap(o.sampleIdx) < len(cands) {
		o.sampleIdx = make([]int, len(cands))
	}
	idx := o.sampleIdx[:len(cands)]
	copy(idx, cands)
	if cap(o.sampleOut) < k {
		o.sampleOut = make([]int, k)
	}
	out := o.sampleOut[:k]
	for i := 0; i < k; i++ {
		j := i + o.rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = idx[i]
	}
	return out
}

// scoreHost evaluates Eq. 11 for placing p on n: the predicted joint
// CPUxmemory utilization minus the weighted contention-induced degradation
// of every pod that would share the host (including p itself). LS
// degradation is the predicted PSI (zero on a calm host by construction);
// BE degradation is the predicted normalized completion time in excess of
// the application's uncontended baseline.
func (o *Optum) scoreHost(n *cluster.NodeState, p *trace.Pod) (score float64, cpuOK, memOK bool) {
	// Pods reserved by this batch's earlier decisions enter the Eq. 7-8
	// pairing exactly like running pods — their applications' ERO profiles
	// apply, so burst arrivals of one application pack as tightly as the
	// profiles justify.
	return o.scoreHostResv(n, p, o.ReservedPods(n.Node.ID), nil)
}

// scoreHostResv is scoreHost over an explicit reservation list, optionally
// filling an Eq. 11 decomposition. The hot path passes eq == nil; the
// decomposition branch runs only when a sampled decision trace re-scores
// the winning host.
func (o *Optum) scoreHostResv(n *cluster.NodeState, p *trace.Pod, resv []*trace.Pod, eq *obs.Eq11) (score float64, cpuOK, memOK bool) {
	capc := n.Capacity()
	// The node's resident state comes from the cached summary, so only resv
	// and p are walked here: O(extras), not O(residents), and nothing is
	// allocated.
	sum := o.sums.ForNode(n)

	poc := o.sums.CPUWith(sum, resv, p)
	pom := o.sums.MemWith(sum, resv, p)
	cpuOK = poc <= capc.CPU
	memOK = pom <= o.Opt.MemCap*capc.Mem
	if !cpuOK || !memOK {
		return 0, cpuOK, memOK
	}
	hostC := poc / capc.CPU
	hostM := pom / capc.Mem

	// "Before" load level for the delta form: the host without p.
	hostC0, hostM0 := hostC, hostM
	if !o.Opt.AbsoluteScore {
		hostC0 = o.sums.CPUWith(sum, resv, nil) / capc.CPU
		hostM0 = o.sums.MemWith(sum, resv, nil) / capc.Mem
	}

	var lsSum, beSum float64
	// Pods of one application share profile inputs, so terms are computed
	// once per distinct (application, SLO class) entry of the node's
	// composition multiset — a flat scratch indexed by the summary, not a
	// per-candidate map with concatenated string keys.
	apps := sum.Apps()
	var termBuf [64]float64
	terms := termBuf[:0]
	if len(apps) > len(termBuf) {
		terms = make([]float64, 0, len(apps))
	}
	for i := range apps {
		terms = append(terms, o.residentTerm(apps[i].App, apps[i].LS, hostC, hostM, hostC0, hostM0))
	}
	// Replay the residents in scheduling order: the identical sequence of
	// floating-point additions a full per-pod walk performs (untrusted BE
	// entries hold 0.0, a bitwise no-op on the non-negative accumulator).
	for _, idx := range sum.TermIdx() {
		if idx < 0 {
			continue
		}
		if apps[idx].LS {
			lsSum += terms[idx]
		} else {
			beSum += terms[idx]
		}
	}
	// Batch-reserved pods reuse resident entries where the (application,
	// class) matches; new pairs get a small scratch extension.
	var extBuf [8]resvTerm
	ext := extBuf[:0]
	for _, rp := range resv {
		var ls bool
		switch {
		case rp.SLO.LatencySensitive():
			ls = true
		case rp.SLO == trace.SLOBE:
			ls = false
		default:
			continue
		}
		ri, found := 0.0, false
		for i := range apps {
			if apps[i].LS == ls && apps[i].App == rp.AppID {
				ri, found = terms[i], true
				break
			}
		}
		if !found {
			for i := range ext {
				if ext[i].ls == ls && ext[i].app == rp.AppID {
					ri, found = ext[i].val, true
					break
				}
			}
		}
		if !found {
			ri = o.residentTerm(rp.AppID, ls, hostC, hostM, hostC0, hostM0)
			ext = append(ext, resvTerm{app: rp.AppID, ls: ls, val: ri})
		}
		if ls {
			lsSum += ri
		} else {
			beSum += ri
		}
	}
	// The about-to-be-scheduled pod's own term is its absolute predicted
	// degradation at the new load level in both forms (it had no "before").
	switch {
	case p.SLO.LatencySensitive():
		cm, mm, qm, _ := o.Profiles.Stats.Max(p.AppID)
		lsSum += o.Profiles.Models.PredictPSI(p.AppID, cm, mm, hostC, hostM, qm)
	case p.SLO == trace.SLOBE:
		if o.Profiles.Models.TrustedBE(p.AppID, o.Opt.MAPEGate) {
			cm, mm, _, _ := o.Profiles.Stats.Max(p.AppID)
			own := o.Profiles.Models.PredictCT(p.AppID, cm, mm, hostC, hostM) -
				o.Profiles.Models.PredictCT(p.AppID, cm, mm, 0, 0)
			if own > 0 {
				beSum += own
			}
		}
	}

	util := hostC * hostM
	if o.Opt.CPUOnlyScore {
		util = hostC
	}
	if !o.Opt.AbsoluteScore {
		util0 := hostC0 * hostM0
		if o.Opt.CPUOnlyScore {
			util0 = hostC0
		}
		util -= util0
	}
	score = util - o.Opt.OmegaO*lsSum - o.Opt.OmegaB*beSum
	if math.IsNaN(score) {
		score = math.Inf(-1)
	}
	if eq != nil {
		eq.UtilTerm = util
		eq.LSDegradation = lsSum
		eq.BEDegradation = beSum
		eq.OmegaO = o.Opt.OmegaO
		eq.OmegaB = o.Opt.OmegaB
		eq.Score = score
	}
	return score, true, true
}

// resvTerm is scratch for a batch-reserved pod's interference entry not
// already present in the node's resident multiset.
type resvTerm struct {
	app string
	ls  bool
	val float64
}

// residentTerm computes one (application, SLO class) entry's Eq. 11
// interference term: the degradation increase the placement causes (delta
// form) or the absolute level (literal form). It is a pure function of the
// entry and the host load levels, so one evaluation serves every pod of the
// entry. Untrusted BE applications contribute zero, exactly like the
// per-pod walk that skipped them.
func (o *Optum) residentTerm(appID string, ls bool, hostC, hostM, hostC0, hostM0 float64) float64 {
	if ls {
		cm, mm, qm, _ := o.Profiles.Stats.Max(appID)
		ri := o.Profiles.Models.PredictPSI(appID, cm, mm, hostC, hostM, qm)
		if !o.Opt.AbsoluteScore {
			ri -= o.Profiles.Models.PredictPSI(appID, cm, mm, hostC0, hostM0, qm)
		}
		return ri
	}
	if !o.Profiles.Models.TrustedBE(appID, o.Opt.MAPEGate) {
		return 0
	}
	cm, mm, _, _ := o.Profiles.Stats.Max(appID)
	ri := o.Profiles.Models.PredictCT(appID, cm, mm, hostC, hostM)
	if o.Opt.AbsoluteScore {
		// Degradation form: subtract the app's uncontended completion time
		// so calm co-location costs nothing.
		ri -= o.Profiles.Models.PredictCT(appID, cm, mm, 0, 0)
	} else {
		ri -= o.Profiles.Models.PredictCT(appID, cm, mm, hostC0, hostM0)
	}
	if ri < 0 {
		ri = 0
	}
	return ri
}

// Summaries exposes the prediction-summary store (benchmarks and tests read
// its counters directly).
func (o *Optum) Summaries() *predictor.SummaryStore { return o.sums }

// ScoreHostForTest exposes scoreHost for diagnostic tests.
func ScoreHostForTest(o *Optum, n *cluster.NodeState, p *trace.Pod) (float64, bool, bool) {
	return o.scoreHost(n, p)
}
