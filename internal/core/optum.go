// Package core implements Optum, the paper's unified data-center scheduler
// (§4): the Online Scheduler with its Resource Usage Predictor (Eq. 7-8),
// Interference Predictor (Eq. 9-10) and Node Selector (Eq. 11), the
// PPO-style host sampling that keeps scheduling scalable (§4.3.4), and the
// Deployment Module that resolves conflicts between parallel schedulers
// (§4.4).
package core

import (
	"math"
	"math/rand"
	"runtime"

	"unisched/internal/cluster"
	"unisched/internal/pipeline"
	"unisched/internal/predictor"
	"unisched/internal/profiler"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// BlackoutSource reports whether the profilers currently have no (or stale)
// data for an application — a tracing-pipeline outage, typically injected
// by internal/chaos. While an application is blacked out, the Node Selector
// must not trust its profiles: Optum falls back to the conservative
// request-based score for affected pods instead of scoring garbage.
type BlackoutSource interface {
	Blacked(app string) bool
}

// Profiles bundles the Offline Profiler outputs the Online Scheduler
// consumes. ERO and Stats are live stores that keep updating while the
// scheduler runs; Models is the most recent training snapshot. Blackout,
// when non-nil, is the live data-availability signal gating all of them.
type Profiles struct {
	ERO    *profiler.EROStore
	Stats  *profiler.AppStatsStore
	Models *profiler.Models
	// Blackout, when non-nil, marks applications whose profiler data is
	// currently unavailable; Optum degrades to request-based scoring for
	// their pods.
	Blackout BlackoutSource
}

// Options are Optum's tunables with the evaluation's defaults.
type Options struct {
	// OmegaO and OmegaB weigh LS and BE interference in the objective
	// (Eq. 6/11); the evaluation settles on 0.7 / 0.3 (§5.5).
	OmegaO, OmegaB float64
	// SampleProb is the PPO host-sampling probability (§4.3.4 uses 0.05).
	SampleProb float64
	// MinCandidates floors the sampled candidate set on small clusters.
	MinCandidates int
	// MemCap caps predicted memory utilization per host (§5.1 uses 0.8 to
	// keep OOM risk negligible under memory over-commitment).
	MemCap float64
	// MAPEGate is the accuracy gate above which a BE application's profile
	// is ignored (§5.2 optimizes only BE apps with MAPE below 0.2).
	MAPEGate float64
	// Workers is the scoring parallelism (<=0 means GOMAXPROCS).
	Workers int
	// FullScan disables PPO sampling (ablation: score every host).
	FullScan bool
	// FullScanFallback enables a second-chance full scan when the PPO
	// sample contains no admissible host. It bounds worst-case waiting at
	// high occupancy (a pod can otherwise wait ticks purely because its
	// random subset missed the sparse admissible set) at the cost of
	// last-resort placements the sampled objective would have skipped.
	FullScanFallback bool
	// CPUOnlyScore replaces the joint CPUxmem utilization term of Eq. 11
	// with CPU utilization alone (ablation: memory-stranding comparison).
	CPUOnlyScore bool
	// UseTriples enables the §4.2.2 triple-wise ERO extension in the
	// resource usage predictor (requires profiles collected with
	// EROStore.EnableTriples).
	UseTriples bool
	// AbsoluteScore evaluates the per-host score of Eq. 11 literally: the
	// host's absolute joint utilization minus the absolute interference
	// level of every resident pod. The default (false) instead scores the
	// *change* in the Eq. 6 global objective the placement causes, which
	// is what a greedy maximizer of a global objective should compare: the
	// literal form charges every resident pod's interference level as a
	// constant penalty, biasing against occupied hosts and
	// de-consolidating the cluster (ablation in EXPERIMENTS.md).
	AbsoluteScore bool
}

// DefaultOptions returns the evaluation configuration.
func DefaultOptions() Options {
	return Options{
		OmegaO:        0.7,
		OmegaB:        0.3,
		SampleProb:    0.05,
		MinCandidates: 32,
		MemCap:        0.8,
		MAPEGate:      0.2,
	}
}

// Optum is the Online Scheduler. It implements sched.Scheduler.
type Optum struct {
	*sched.Base
	Opt      Options
	Profiles Profiles

	pred *predictor.Optum
	rng  *rand.Rand
}

// New builds an Optum scheduler over a cluster and profiler outputs.
func New(c *cluster.Cluster, prof Profiles, opt Options, seed int64) *Optum {
	if opt.OmegaO == 0 && opt.OmegaB == 0 {
		opt = DefaultOptions()
	}
	if opt.MinCandidates <= 0 {
		opt.MinCandidates = 32
	}
	if opt.MemCap <= 0 {
		opt.MemCap = 0.8
	}
	pred := predictor.NewOptum(prof.ERO)
	pred.UseTriples = opt.UseTriples
	return &Optum{
		Base:     sched.NewBase(c, seed),
		Opt:      opt,
		Profiles: prof,
		pred:     pred,
		rng:      rand.New(rand.NewSource(seed + 1)),
	}
}

// Name implements sched.Scheduler.
func (o *Optum) Name() string { return "Optum" }

// Predictor exposes the pairwise resource-usage predictor (used by the
// predictor-accuracy experiments).
func (o *Optum) Predictor() *predictor.Optum { return o.pred }

// Schedule implements sched.Scheduler: one greedy, objective-guided
// decision per pending pod, driven through the shared placement pipeline.
// The specs are rebuilt per batch so option changes between batches take
// effect.
func (o *Optum) Schedule(pods []*trace.Pod, now int64) []sched.Decision {
	o.BeginBatch()
	workers := o.Opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	main := &pipeline.Spec{
		Eval:             optumEval{o},
		Sampler:          ppoSampler{o},
		Preempt:          true,
		FullScanFallback: o.Opt.FullScanFallback,
		ScanWorkers:      workers,
	}
	fallback := &pipeline.Spec{
		Filters: []pipeline.FilterPlugin{requestFallbackFit{memCap: o.Opt.MemCap}},
		Scores:  []pipeline.WeightedScore{{Plugin: sched.ReqAlignment{}, Weight: 1}},
		Preempt: true,
	}
	out := make([]sched.Decision, len(pods))
	for i, p := range pods {
		if o.degraded(p.AppID) {
			// Degraded mode: with no usable profile the predicted-usage and
			// interference terms of Eq. 11 are meaningless, so admission
			// reverts to the conservative request-based rule (sum of
			// requests within capacity, memory under the cap) and scoring to
			// the production alignment heuristic. Strictly safer, strictly
			// less efficient — exactly the trade a scheduler should make
			// blind.
			out[i] = o.Select(p, fallback)
			continue
		}
		out[i] = o.Select(p, main)
	}
	return out
}

// degraded reports whether the profilers cannot be trusted for the
// application right now: no trained models at all, or an active blackout.
func (o *Optum) degraded(app string) bool {
	if o.Profiles.Models == nil {
		return true
	}
	return o.Profiles.Blackout != nil && o.Profiles.Blackout.Blacked(app)
}

// requestFallbackFit is the degraded-mode admission: sum of requests
// within CPU capacity, request memory under the MemCap budget.
type requestFallbackFit struct {
	memCap float64
}

// FilterName implements pipeline.FilterPlugin.
func (requestFallbackFit) FilterName() string { return "RequestFallbackFit" }

// Filter implements pipeline.FilterPlugin.
func (f requestFallbackFit) Filter(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (bool, bool) {
	load := n.ReqSum().Add(resv).Add(p.Request)
	capc := n.Capacity()
	return load.CPU <= capc.CPU, load.Mem <= f.memCap*capc.Mem
}

// MinHeadroom implements pipeline.HeadroomBounder: both dimensions are
// request-based (memory against the MemCap fraction of capacity).
func (f requestFallbackFit) MinHeadroom(p *trace.Pod, minCap, maxCap trace.Resources) (trace.Resources, bool) {
	return trace.Resources{
		CPU: p.Request.CPU,
		Mem: pipeline.OvercommitBound(p.Request.Mem, f.memCap, minCap.Mem, maxCap.Mem),
	}, true
}

// optumEval is the Node Selector as a fused pipeline evaluation: Eq. 11's
// admission and scoring share the Eq. 7-8 usage prediction, so splitting
// them into Filter and Score plugins would predict twice.
type optumEval struct {
	o *Optum
}

// EvalName implements pipeline.EvalPlugin.
func (optumEval) EvalName() string { return "OptumNodeSelector" }

// Evaluate implements pipeline.EvalPlugin. Batch reservations are read
// from the pipeline ledger as whole pods (Eq. 7-8 pairing), not from the
// summed resv argument.
func (e optumEval) Evaluate(n *cluster.NodeState, p *trace.Pod, _ trace.Resources) (float64, bool, bool) {
	return e.o.scoreHost(n, p)
}

// ppoSampler is the §4.3.4 PPO-style random host partition as a pipeline
// sampling plugin: each scheduling decision scores only a random
// SampleProb fraction of the candidates (floored at MinCandidates), which
// keeps per-pod latency flat as the cluster grows. It reads the current
// Options on every call, so FullScan toggles apply immediately.
type ppoSampler struct {
	o *Optum
}

// SamplerName implements pipeline.SamplerPlugin.
func (ppoSampler) SamplerName() string { return "PPO" }

// Sample implements pipeline.SamplerPlugin.
func (s ppoSampler) Sample(_ *trace.Pod, cands []int) []int {
	o := s.o
	if o.Opt.FullScan {
		return cands
	}
	k := int(o.Opt.SampleProb * float64(len(cands)))
	if k < o.Opt.MinCandidates {
		k = o.Opt.MinCandidates
	}
	if k >= len(cands) {
		return cands
	}
	out := make([]int, k)
	// Partial Fisher-Yates over a copy of indices.
	idx := make([]int, len(cands))
	copy(idx, cands)
	for i := 0; i < k; i++ {
		j := i + o.rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = idx[i]
	}
	return out
}

// scoreHost evaluates Eq. 11 for placing p on n: the predicted joint
// CPUxmemory utilization minus the weighted contention-induced degradation
// of every pod that would share the host (including p itself). LS
// degradation is the predicted PSI (zero on a calm host by construction);
// BE degradation is the predicted normalized completion time in excess of
// the application's uncontended baseline.
func (o *Optum) scoreHost(n *cluster.NodeState, p *trace.Pod) (score float64, cpuOK, memOK bool) {
	capc := n.Capacity()
	// Pods reserved by this batch's earlier decisions enter the Eq. 7-8
	// pairing exactly like running pods — their applications' ERO profiles
	// apply, so burst arrivals of one application pack as tightly as the
	// profiles justify.
	resv := o.ReservedPods(n.Node.ID)
	extras := make([]*trace.Pod, 0, len(resv)+1)
	extras = append(extras, resv...)
	extras = append(extras, p)

	poc := o.pred.PredictCPUPods(n.Pods(), extras)
	pom := o.pred.PredictMemPods(n.Pods(), extras)
	cpuOK = poc <= capc.CPU
	memOK = pom <= o.Opt.MemCap*capc.Mem
	if !cpuOK || !memOK {
		return 0, cpuOK, memOK
	}
	hostC := poc / capc.CPU
	hostM := pom / capc.Mem

	// "Before" load level for the delta form: the host without p.
	hostC0, hostM0 := hostC, hostM
	if !o.Opt.AbsoluteScore {
		hostC0 = o.pred.PredictCPUPods(n.Pods(), resv) / capc.CPU
		hostM0 = o.pred.PredictMemPods(n.Pods(), resv) / capc.Mem
	}

	var lsSum, beSum float64
	// Per-application memoization: pods of one app share profile inputs.
	cache := make(map[string]float64, 8)
	// addResident accumulates a resident pod's term: its interference
	// increase caused by the placement (delta form) or its absolute level
	// (Eq. 11 literal form).
	addResident := func(appID string, slo trace.SLO) {
		switch {
		case slo.LatencySensitive():
			ri, ok := cache["L"+appID]
			if !ok {
				cm, mm, qm, _ := o.Profiles.Stats.Max(appID)
				ri = o.Profiles.Models.PredictPSI(appID, cm, mm, hostC, hostM, qm)
				if !o.Opt.AbsoluteScore {
					ri -= o.Profiles.Models.PredictPSI(appID, cm, mm, hostC0, hostM0, qm)
				}
				cache["L"+appID] = ri
			}
			lsSum += ri
		case slo == trace.SLOBE:
			if !o.Profiles.Models.TrustedBE(appID, o.Opt.MAPEGate) {
				return
			}
			ri, ok := cache["B"+appID]
			if !ok {
				cm, mm, _, _ := o.Profiles.Stats.Max(appID)
				ri = o.Profiles.Models.PredictCT(appID, cm, mm, hostC, hostM)
				if o.Opt.AbsoluteScore {
					// Degradation form: subtract the app's uncontended
					// completion time so calm co-location costs nothing.
					ri -= o.Profiles.Models.PredictCT(appID, cm, mm, 0, 0)
				} else {
					ri -= o.Profiles.Models.PredictCT(appID, cm, mm, hostC0, hostM0)
				}
				if ri < 0 {
					ri = 0
				}
				cache["B"+appID] = ri
			}
			beSum += ri
		}
	}
	for _, ps := range n.Pods() {
		addResident(ps.Pod.AppID, ps.Pod.SLO)
	}
	for _, rp := range resv {
		addResident(rp.AppID, rp.SLO)
	}
	// The about-to-be-scheduled pod's own term is its absolute predicted
	// degradation at the new load level in both forms (it had no "before").
	switch {
	case p.SLO.LatencySensitive():
		cm, mm, qm, _ := o.Profiles.Stats.Max(p.AppID)
		lsSum += o.Profiles.Models.PredictPSI(p.AppID, cm, mm, hostC, hostM, qm)
	case p.SLO == trace.SLOBE:
		if o.Profiles.Models.TrustedBE(p.AppID, o.Opt.MAPEGate) {
			cm, mm, _, _ := o.Profiles.Stats.Max(p.AppID)
			own := o.Profiles.Models.PredictCT(p.AppID, cm, mm, hostC, hostM) -
				o.Profiles.Models.PredictCT(p.AppID, cm, mm, 0, 0)
			if own > 0 {
				beSum += own
			}
		}
	}

	util := hostC * hostM
	if o.Opt.CPUOnlyScore {
		util = hostC
	}
	if !o.Opt.AbsoluteScore {
		util0 := hostC0 * hostM0
		if o.Opt.CPUOnlyScore {
			util0 = hostC0
		}
		util -= util0
	}
	score = util - o.Opt.OmegaO*lsSum - o.Opt.OmegaB*beSum
	if math.IsNaN(score) {
		score = math.Inf(-1)
	}
	return score, true, true
}

// ScoreHostForTest exposes scoreHost for diagnostic tests.
func ScoreHostForTest(o *Optum, n *cluster.NodeState, p *trace.Pod) (float64, bool, bool) {
	return o.scoreHost(n, p)
}
