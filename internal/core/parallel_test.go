package core

import (
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/pipeline"
	"unisched/internal/sched"
)

func TestParallelPartitionsDeterministically(t *testing.T) {
	w := smallWorkload(t, 10)
	prof := trainedProfiles(t, w, 60)
	build := func() sched.Scheduler {
		c := cluster.New(w.Nodes, cluster.DefaultPhysics())
		members := make([]sched.Scheduler, 4)
		for m := range members {
			members[m] = New(c, prof, DefaultOptions(), int64(100+m))
		}
		return NewParallel("Optum-x4", members...)
	}
	a := build().Schedule(w.Pods[:60], 0)
	b := build().Schedule(w.Pods[:60], 0)
	if len(a) != 60 || len(b) != 60 {
		t.Fatalf("decision counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Pod.ID != w.Pods[i].ID {
			t.Fatal("decision order broken")
		}
		if a[i].NodeID != b[i].NodeID {
			t.Fatalf("parallel scheduling not deterministic at %d", i)
		}
	}
}

func TestParallelEmptyAndSingle(t *testing.T) {
	w := smallWorkload(t, 4)
	empty := NewParallel("", nil...)
	ds := empty.Schedule(w.Pods[:3], 0)
	for _, d := range ds {
		if d.NodeID != -1 {
			t.Error("memberless parallel should place nothing")
		}
	}
	if empty.Name() != "Parallel" {
		t.Errorf("default name %q", empty.Name())
	}
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	single := NewParallel("solo", sched.NewAlibabaLike(c, 1))
	if got := single.Schedule(w.Pods[:5], 0); len(got) != 5 {
		t.Fatal("single-member parallel broken")
	}
}

func TestParallelConflictsResolved(t *testing.T) {
	// Two members both score the same empty cluster: their best nodes will
	// collide. Apply must keep one winner per node and requeue the rest.
	w := smallWorkload(t, 2)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	members := []sched.Scheduler{
		sched.NewBorgLike(c, 1),
		sched.NewBorgLike(c, 2),
	}
	par := NewParallel("borg-x2", members...)
	ds := par.Schedule(w.Pods[:20], 0)
	dep := &pipeline.Deployer{Cluster: c}
	out := dep.Apply(ds, 0)
	// At most one placement per node in a conflict-resolved batch.
	perNode := map[int]int{}
	for _, d := range out.Placed {
		perNode[d.NodeID]++
	}
	for node, k := range perNode {
		if k > 1 {
			t.Errorf("node %d received %d pods in one conflict-resolved apply", node, k)
		}
	}
	if len(out.Placed)+len(out.Requeued) == 0 {
		t.Fatal("nothing placed or requeued")
	}
}
