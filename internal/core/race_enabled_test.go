//go:build race

package core

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation makes allocation counts meaningless.
const raceEnabled = true
