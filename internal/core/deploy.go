package core

import (
	"sort"

	"unisched/internal/cluster"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// Deployer is the Deployment Module (§4.4): it executes scheduling
// decisions against the cluster and resolves conflicts. When several pods
// are simultaneously scheduled to the same host — which happens whenever
// multiple distributed schedulers (or one scheduler's batched decisions)
// race on stale state — only the decision with the highest score deploys;
// the rest are re-dispatched for later scheduling.
type Deployer struct {
	Cluster *cluster.Cluster
}

// Outcome reports what Apply did with one batch of decisions.
type Outcome struct {
	// Placed are the decisions that were deployed.
	Placed []sched.Decision
	// Requeued are pods that must be rescheduled: conflict losers and
	// pods whose decisions were unplaceable.
	Requeued []*trace.Pod
	// Evicted are BE pods preempted to admit LSR pods; the testbed
	// re-submits them.
	Evicted []*cluster.PodState
}

// ApplyAll deploys every placement decision in the batch, trusting the
// scheduler's in-batch reservations — the single-scheduler fast path. The
// conflict-resolving Apply below is for multiple parallel schedulers whose
// decisions can genuinely race (§4.4).
func (d *Deployer) ApplyAll(ds []sched.Decision, now int64) Outcome {
	var out Outcome
	nodes := len(d.Cluster.Nodes())
	for _, dec := range ds {
		if dec.NodeID < 0 {
			continue
		}
		if dec.NodeID >= nodes {
			// A decision referencing a nonexistent host is a scheduler
			// bug; re-dispatch the pod rather than crashing the testbed.
			out.Requeued = append(out.Requeued, dec.Pod)
			continue
		}
		if !d.Cluster.Node(dec.NodeID).Schedulable() {
			// The target crashed or was cordoned after the scheduler read
			// its state; the decision is stale, not wrong — re-dispatch.
			out.Requeued = append(out.Requeued, dec.Pod)
			continue
		}
		if dec.NeedPreempt {
			evicted := d.Cluster.PreemptBE(dec.NodeID, dec.Pod.Request, now)
			out.Evicted = append(out.Evicted, evicted...)
		}
		if _, err := d.Cluster.Place(dec.Pod, dec.NodeID, now); err != nil {
			continue
		}
		out.Placed = append(out.Placed, dec)
	}
	return out
}

// Apply deploys a batch of decisions at time now with §4.4 conflict
// resolution: when several pods target one host, only the highest score
// deploys and the rest are re-dispatched. Decisions with NodeID < 0 are
// ignored (their pods stay pending at the caller).
func (d *Deployer) Apply(ds []sched.Decision, now int64) Outcome {
	var out Outcome

	// Group placements per node, keeping input order deterministic.
	byNode := make(map[int][]sched.Decision)
	total := len(d.Cluster.Nodes())
	var nodes []int
	for _, dec := range ds {
		if dec.NodeID < 0 {
			continue
		}
		if dec.NodeID >= total {
			out.Requeued = append(out.Requeued, dec.Pod)
			continue
		}
		if !d.Cluster.Node(dec.NodeID).Schedulable() {
			// Stale target (crashed/cordoned between scheduling and
			// deployment): re-dispatch rather than placing on a dead host.
			out.Requeued = append(out.Requeued, dec.Pod)
			continue
		}
		if _, seen := byNode[dec.NodeID]; !seen {
			nodes = append(nodes, dec.NodeID)
		}
		byNode[dec.NodeID] = append(byNode[dec.NodeID], dec)
	}
	sort.Ints(nodes)

	for _, nodeID := range nodes {
		group := byNode[nodeID]
		// Conflict resolution: highest score deploys, rest re-dispatch.
		best := 0
		for i := 1; i < len(group); i++ {
			if group[i].Score > group[best].Score {
				best = i
			}
		}
		for i, dec := range group {
			if i != best {
				out.Requeued = append(out.Requeued, dec.Pod)
				continue
			}
			if dec.NeedPreempt {
				evicted := d.Cluster.PreemptBE(nodeID, dec.Pod.Request, now)
				out.Evicted = append(out.Evicted, evicted...)
			}
			if _, err := d.Cluster.Place(dec.Pod, nodeID, now); err != nil {
				// Already running (duplicate decision): drop silently.
				continue
			}
			out.Placed = append(out.Placed, dec)
		}
	}
	return out
}
