package core

import (
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/profiler"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// trainedProfiles builds profiles by replaying a round-robin warmup, the
// same trick the profiler tests use. It takes testing.TB so benchmarks can
// share it.
func trainedProfiles(t testing.TB, w *trace.Workload, ticks int) Profiles {
	t.Helper()
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	col := profiler.NewCollector(1)
	next := 0
	placed := map[int]bool{}
	for tick := 0; tick < ticks; tick++ {
		now := int64(tick) * trace.SampleInterval
		for _, p := range w.Pods {
			if p.Submit > now {
				break
			}
			if placed[p.ID] {
				continue
			}
			if _, err := c.Place(p, next%len(w.Nodes), now); err == nil {
				placed[p.ID] = true
				next++
			}
		}
		completed, snaps := c.Tick(now, float64(trace.SampleInterval))
		col.ObserveTick(snaps)
		for _, ps := range completed {
			col.ObserveCompletion(ps)
		}
	}
	models, err := col.TrainInterference(profiler.DefaultFactory(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	return Profiles{ERO: col.ERO(), Stats: col.Stats(), Models: models}
}

func smallWorkload(t *testing.T, nodes int) *trace.Workload {
	t.Helper()
	cfg := trace.SmallConfig()
	cfg.NumNodes = nodes
	return trace.MustGenerate(cfg)
}

func TestOptumSchedulesOnEmptyCluster(t *testing.T) {
	w := smallWorkload(t, 10)
	prof := trainedProfiles(t, w, 120)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	o := New(c, prof, DefaultOptions(), 7)
	if o.Name() != "Optum" {
		t.Fatalf("Name = %q", o.Name())
	}
	ds := o.Schedule(w.Pods[:50], 0)
	if len(ds) != 50 {
		t.Fatalf("decision count = %d", len(ds))
	}
	placed := 0
	for _, d := range ds {
		if d.NodeID >= 0 {
			placed++
		}
	}
	if placed < 45 {
		t.Errorf("only %d/50 placed on an empty cluster", placed)
	}
}

func TestOptumDeterministic(t *testing.T) {
	w := smallWorkload(t, 10)
	prof := trainedProfiles(t, w, 80)
	run := func() []sched.Decision {
		c := cluster.New(w.Nodes, cluster.DefaultPhysics())
		o := New(c, prof, DefaultOptions(), 7)
		o.Opt.Workers = 4 // parallel scoring must not change results
		return o.Schedule(w.Pods[:80], 0)
	}
	a, b := run(), run()
	for i := range a {
		if a[i].NodeID != b[i].NodeID {
			t.Fatalf("decision %d differs: %d vs %d", i, a[i].NodeID, b[i].NodeID)
		}
	}
}

func TestOptumMemCap(t *testing.T) {
	w := smallWorkload(t, 2)
	prof := trainedProfiles(t, w, 80)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	o := New(c, prof, DefaultOptions(), 7)
	// Deploy everything Optum accepts; predicted memory must stay <= 0.8 cap.
	pred := o.Predictor()
	limit := 400
	if limit > len(w.Pods) {
		limit = len(w.Pods)
	}
	for _, p := range w.Pods[:limit] {
		d := o.Schedule([]*trace.Pod{p}, 0)[0]
		if d.NodeID < 0 || d.NeedPreempt {
			continue
		}
		n := c.Node(d.NodeID)
		if pom := pred.PredictMemWith(n, p); pom > o.Opt.MemCap*n.Capacity().Mem+1e-9 {
			t.Fatalf("admission would exceed mem cap: %v > %v", pom, o.Opt.MemCap*n.Capacity().Mem)
		}
		if _, err := c.Place(p, d.NodeID, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOptumSampling(t *testing.T) {
	w := smallWorkload(t, 10)
	prof := trainedProfiles(t, w, 40)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	o := New(c, prof, DefaultOptions(), 7)

	sampler := ppoSampler{o}
	cands := make([]int, 1000)
	for i := range cands {
		cands[i] = i
	}
	s := sampler.Sample(nil, cands)
	if len(s) != 50 { // 5% of 1000
		t.Errorf("sample size = %d, want 50", len(s))
	}
	seen := map[int]bool{}
	for _, id := range s {
		if seen[id] {
			t.Fatal("duplicate in sample")
		}
		seen[id] = true
	}
	// Mid-size sets: floored at MinCandidates.
	if got := sampler.Sample(nil, cands[:40]); len(got) != o.Opt.MinCandidates {
		t.Errorf("mid set sample = %d, want %d", len(got), o.Opt.MinCandidates)
	}
	// Sets at or below the floor are returned whole.
	if got := sampler.Sample(nil, cands[:20]); len(got) != 20 {
		t.Errorf("small set should be returned whole, got %d", len(got))
	}
	// FullScan ablation.
	o.Opt.FullScan = true
	if got := sampler.Sample(nil, cands); len(got) != 1000 {
		t.Errorf("FullScan sample = %d", len(got))
	}
}

func TestOptumPrefersLowInterference(t *testing.T) {
	// Two hosts: one crowded with LS pods (high predicted PSI), one with
	// moderate utilization. A new LS pod should score the quiet host higher
	// once the utilization term is comparable.
	w := smallWorkload(t, 2)
	prof := trainedProfiles(t, w, 120)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	o := New(c, prof, DefaultOptions(), 7)

	var lsPods []*trace.Pod
	for _, p := range w.Pods {
		if p.SLO == trace.SLOLS {
			lsPods = append(lsPods, p)
		}
	}
	if len(lsPods) < 30 {
		t.Skip("not enough LS pods")
	}
	// Crowd node 0 hard.
	for _, p := range lsPods[:25] {
		if _, err := c.Place(p, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Node 1 gets a couple.
	for _, p := range lsPods[25:27] {
		if _, err := c.Place(p, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		c.Tick(int64(i)*30, 30)
	}
	probe := lsPods[28]
	s0, cpu0, mem0 := o.scoreHost(c.Node(0), probe)
	s1, cpu1, mem1 := o.scoreHost(c.Node(1), probe)
	if cpu1 && mem1 {
		if cpu0 && mem0 && s0 > s1 {
			// Allowed only if node 0's utilization term dominates; with 25
			// vs 2 pods of interference the quiet host must win.
			t.Errorf("crowded host scored %v above quiet host %v", s0, s1)
		}
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.OmegaO != 0.7 || o.OmegaB != 0.3 {
		t.Errorf("omega defaults = %v/%v", o.OmegaO, o.OmegaB)
	}
	if o.SampleProb != 0.05 || o.MemCap != 0.8 || o.MAPEGate != 0.2 {
		t.Errorf("defaults wrong: %+v", o)
	}
}

func TestOptumTriplesOption(t *testing.T) {
	// UseTriples wires through to the predictor and still schedules.
	w := smallWorkload(t, 8)
	prof := trainedProfilesWithTriples(t, w, 60)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	opt := DefaultOptions()
	opt.UseTriples = true
	o := New(c, prof, opt, 7)
	if !o.Predictor().UseTriples {
		t.Fatal("UseTriples not wired to predictor")
	}
	placed := 0
	for _, d := range o.Schedule(w.Pods[:40], 0) {
		if d.NodeID >= 0 {
			placed++
		}
	}
	if placed == 0 {
		t.Fatal("triple-mode Optum placed nothing")
	}
}

// trainedProfilesWithTriples is trainedProfiles with triple observation on.
func trainedProfilesWithTriples(t *testing.T, w *trace.Workload, ticks int) Profiles {
	t.Helper()
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	col := profiler.NewCollector(1)
	col.ERO().EnableTriples(2)
	next := 0
	placed := map[int]bool{}
	for tick := 0; tick < ticks; tick++ {
		now := int64(tick) * trace.SampleInterval
		for _, p := range w.Pods {
			if p.Submit > now {
				break
			}
			if placed[p.ID] {
				continue
			}
			if _, err := c.Place(p, next%len(w.Nodes), now); err == nil {
				placed[p.ID] = true
				next++
			}
		}
		completed, snaps := c.Tick(now, float64(trace.SampleInterval))
		col.ObserveTick(snaps)
		for _, ps := range completed {
			col.ObserveCompletion(ps)
		}
	}
	models, err := col.TrainInterference(profiler.DefaultFactory(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if col.ERO().Triples() == 0 {
		t.Fatal("no triples collected")
	}
	return Profiles{ERO: col.ERO(), Stats: col.Stats(), Models: models}
}

func TestOptumFallbackFindsSparseAdmissibleNode(t *testing.T) {
	// 50 nodes, 49 saturated beyond admission, one free. A 1-node PPO
	// sample usually misses it; the second-chance full scan must find it.
	cfg := trace.SmallConfig()
	cfg.NumNodes = 50
	w := trace.MustGenerate(cfg)
	prof := trainedProfiles(t, w, 40)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	const freeNode = 37
	i := 0
	for _, p := range w.Pods {
		node := i % 50
		if node == freeNode {
			i++
			node = i % 50
		}
		if c.Node(node).ReqSum().CPU < 3*c.Node(node).Capacity().CPU {
			if _, err := c.Place(p, node, 0); err == nil {
				i++
			}
		}
		// Saturated enough when every non-free node is past 2x capacity.
		done := true
		for nid := 0; nid < 50; nid++ {
			if nid == freeNode {
				continue
			}
			if c.Node(nid).ReqSum().CPU < 2*c.Node(nid).Capacity().CPU {
				done = false
				break
			}
		}
		if done {
			break
		}
	}

	probe := w.Pods[len(w.Pods)-1]
	opt := DefaultOptions()
	opt.MinCandidates = 1
	opt.SampleProb = 0.02

	optFB := opt
	optFB.FullScanFallback = true
	withFallback := New(c, prof, optFB, 9)
	d := withFallback.Schedule([]*trace.Pod{probe}, 0)[0]
	if d.NodeID != freeNode {
		t.Errorf("fallback scan picked node %d, want %d (reason %v)", d.NodeID, freeNode, d.Reason)
	}

	optNo := opt
	misses := 0
	for seed := int64(0); seed < 20; seed++ {
		o := New(c, prof, optNo, seed)
		if dd := o.Schedule([]*trace.Pod{probe}, 0)[0]; dd.NodeID < 0 {
			misses++
		}
	}
	if misses == 0 {
		t.Error("1-node samples never missed the single admissible host — fallback untestable")
	}
}
