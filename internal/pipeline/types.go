// Package pipeline is the staged placement substrate every scheduler in
// the repository runs on: PreFilter -> Filter -> Score -> Sample ->
// Reserve, backed by an incrementally-maintained indexed candidate store
// and instrumented with per-stage counters. The paper's Node Selector
// (§4.2.2) and every §5.1 baseline are instances of the same shape —
// filter candidates, score them, reserve, commit — so the shape lives
// here once, the way production scheduling frameworks (kube-scheduler,
// YuniKorn) factor it, and each scheduler reduces to a declarative plugin
// set. Both drivers consume the same pipeline: internal/sim deploys
// batches through Deployer, and internal/engine's optimistic per-node-
// version commit path executes single decisions through Deploy.
package pipeline

import (
	"unisched/internal/cluster"
	"unisched/internal/trace"
)

// Reason classifies why a pod could not be scheduled this round — the
// delay-source taxonomy of Fig. 9(b).
type Reason int

// Delay reasons. ReasonNone means the pod was placed.
const (
	ReasonNone   Reason = iota
	ReasonCPUMem        // both CPU and memory insufficient on candidates
	ReasonCPU           // CPU insufficient
	ReasonMem           // memory insufficient
	ReasonOther         // affinity or no candidates
)

var reasonNames = [...]string{"None", "CPU&Mem", "CPU", "Mem", "Other"}

// String names the reason as in Fig. 9(b).
func (r Reason) String() string {
	if r < 0 || int(r) >= len(reasonNames) {
		return "?"
	}
	return reasonNames[r]
}

// Classify maps per-dimension blocking counts over a candidate set to the
// delay-source taxonomy: the single place the CPU/Mem/CPU&Mem/Other
// bucketing lives.
func Classify(cpuBlock, memBlock int) Reason {
	switch {
	case cpuBlock > 0 && memBlock > 0:
		return ReasonCPUMem
	case cpuBlock > 0:
		return ReasonCPU
	case memBlock > 0:
		return ReasonMem
	default:
		return ReasonOther
	}
}

// Decision is a scheduler's verdict for one pod.
type Decision struct {
	Pod *trace.Pod
	// NodeID is the chosen host, or -1 when the pod stays pending.
	NodeID int
	// Score is the scheduler's score for the chosen host; the Deployment
	// Module uses it to resolve conflicts between parallel schedulers.
	Score float64
	// NeedPreempt asks the deployer to evict BE pods on NodeID first
	// (LSR admission).
	NeedPreempt bool
	// Reason explains an unplaced pod.
	Reason Reason
}

// Scheduler places batches of pending pods. Implementations read cluster
// state directly and must not mutate it — deployment is the drivers' job.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Schedule proposes placements for the pending pods at time now. It
	// returns one decision per input pod, in order.
	Schedule(pods []*trace.Pod, now int64) []Decision
}

// PreFilterPlugin rejects a pod before any node is considered — pod-level
// admissibility (malformed requests, policy holds). Returning ok=false
// leaves the pod pending with the given reason.
type PreFilterPlugin interface {
	// PreFilterName identifies the plugin in configuration dumps.
	PreFilterName() string
	// PreFilter reports whether the pod may be scheduled at all.
	PreFilter(p *trace.Pod) (reason Reason, ok bool)
}

// FilterPlugin vetoes hosts for a pod. Filters see the batch reservations
// so in-batch decisions stack correctly.
type FilterPlugin interface {
	// FilterName identifies the plugin in configuration dumps.
	FilterName() string
	// Filter reports per-dimension admission; both true admits.
	Filter(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (cpuOK, memOK bool)
}

// ScorePlugin ranks an admissible host for a pod; higher is better.
// Scores from all plugins are summed with their weights.
type ScorePlugin interface {
	// ScoreName identifies the plugin.
	ScoreName() string
	// Score returns an arbitrary-scale value; use Weight to balance.
	Score(n *cluster.NodeState, p *trace.Pod) float64
}

// WeightedScore pairs a plugin with its weight.
type WeightedScore struct {
	Plugin ScorePlugin
	Weight float64
}

// EvalPlugin fuses Filter and Score into one per-node evaluation, for
// schedulers whose admission and scoring share an expensive intermediate
// (Optum's Eq. 7-8 usage prediction feeds both). A Spec uses either Eval
// or Filters+Scores, never both.
type EvalPlugin interface {
	// EvalName identifies the plugin.
	EvalName() string
	// Evaluate returns the node's score and per-dimension admission. The
	// score is ignored unless both dimensions admit.
	Evaluate(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (score float64, cpuOK, memOK bool)
}

// RejectLabeler is an optional interface on Eval plugins: it names the
// per-dimension scan rejection for decision traces, replacing the generic
// "insufficient cpu"/"insufficient mem" with the plugin's admission
// semantics (Optum rejects on the ERO-predicted usage caps, not on raw
// requests). Consulted only on traced decisions.
type RejectLabeler interface {
	// RejectLabels returns the per-dimension rejection reason strings.
	RejectLabels() (cpu, mem string)
}

// SamplerPlugin thins the candidate set before the scan — the §4.3.4
// PPO-style subset sampling that keeps per-decision cost flat as the
// cluster grows. Returning the input slice unchanged disables thinning
// for this decision.
type SamplerPlugin interface {
	// SamplerName identifies the plugin.
	SamplerName() string
	// Sample picks the subset of cands to scan for p. It must not modify
	// cands.
	Sample(p *trace.Pod, cands []int) []int
}

// HeadroomBounder is an optional interface on Filter/Eval plugins: it
// returns, per dimension, a static-headroom threshold below which the
// plugin is guaranteed to reject the node for this pod. Headroom is the
// node's capacity minus its running request sum, *before* in-batch
// reservations — reservations only reduce headroom further, so a bound
// that fails at zero reservations fails a fortiori. The indexed candidate
// store uses these bounds to skip whole headroom buckets; a dimension
// with no usable bound reports a non-positive threshold. Bounds must be
// conservative: pruning a node that the filter would have admitted
// changes placements, which the fixed-seed equivalence tests forbid.
// minCap and maxCap are the cluster's per-dimension capacity extremes
// (Index.CapRange) — over-commitment bounds depend on node capacity, and
// on heterogeneous clusters only the extremes yield a bound valid for
// every node.
type HeadroomBounder interface {
	// MinHeadroom returns the per-dimension thresholds and whether any
	// pruning is possible at all for this pod.
	MinHeadroom(p *trace.Pod, minCap, maxCap trace.Resources) (trace.Resources, bool)
}

// OvercommitBound is the conservative static-headroom bound for a
// request-based admission test of the form
//
//	reqSum + resv + request <= oc * capacity
//
// in one dimension. The test failing is implied by headroom (capacity -
// reqSum) < request - (oc-1)*capacity; since per-node capacity is unknown
// at bound time, the capacity extreme that minimizes the right-hand side
// makes the bound valid for every node: maxCap when oc >= 1, minCap
// otherwise.
func OvercommitBound(request, oc, minCap, maxCap float64) float64 {
	if oc >= 1 {
		return request - (oc-1)*maxCap
	}
	return request + (1-oc)*minCap
}

// Spec declares one scheduler path as a plugin set. Schedulers build a
// Spec (typically once per batch, so tunable fields read current values)
// and hand each pod to Pipeline.Select.
type Spec struct {
	// Pre runs before any node is considered.
	Pre []PreFilterPlugin
	// Filters and Scores drive the per-node scan when Eval is nil.
	Filters []FilterPlugin
	Scores  []WeightedScore
	// Eval replaces Filters+Scores with one fused evaluation.
	Eval EvalPlugin
	// Sampler, when non-nil, thins the candidate set before scanning.
	// Sampling disables headroom-bucket pruning: the sample must be drawn
	// from the full candidate list to preserve the sampler's RNG stream.
	Sampler SamplerPlugin
	// Preempt enables the LSR fallback: when nothing admits an LSR pod,
	// propose BE preemption on the fullest candidate (§3.1.3).
	Preempt bool
	// FullScanFallback rescans the full candidate set when a sampled scan
	// admits nothing (bounds worst-case waiting at high occupancy).
	FullScanFallback bool
	// ScanWorkers parallelizes the scan when > 1 and the candidate list
	// is large. The reduction is deterministic regardless.
	ScanWorkers int
}

// evaluate runs the spec's per-node evaluation: the fused Eval plugin, or
// the Filter conjunction followed (only on admission) by the weighted
// score sum.
func (sp *Spec) evaluate(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (score float64, cpuOK, memOK bool) {
	if sp.Eval != nil {
		return sp.Eval.Evaluate(n, p, resv)
	}
	cpuOK, memOK = true, true
	for _, fp := range sp.Filters {
		c, m := fp.Filter(n, p, resv)
		cpuOK = cpuOK && c
		memOK = memOK && m
		if !cpuOK && !memOK {
			break
		}
	}
	if !cpuOK || !memOK {
		return 0, cpuOK, memOK
	}
	for _, ws := range sp.Scores {
		score += ws.Weight * ws.Plugin.Score(n, p)
	}
	return score, true, true
}

// minHeadroom combines the HeadroomBounder bounds of the spec's plugins:
// a node must pass every filter, so the per-dimension maximum over all
// bounds is itself a valid bound. Returns ok=false when no plugin offers
// a usable (positive in some dimension) bound.
func (sp *Spec) minHeadroom(p *trace.Pod, minCap, maxCap trace.Resources) (trace.Resources, bool) {
	var h trace.Resources
	found := false
	consider := func(v interface{}) {
		hb, ok := v.(HeadroomBounder)
		if !ok {
			return
		}
		b, usable := hb.MinHeadroom(p, minCap, maxCap)
		if !usable {
			return
		}
		if !found {
			h = b
			found = true
			return
		}
		if b.CPU > h.CPU {
			h.CPU = b.CPU
		}
		if b.Mem > h.Mem {
			h.Mem = b.Mem
		}
	}
	if sp.Eval != nil {
		consider(sp.Eval)
	} else {
		for _, f := range sp.Filters {
			consider(f)
		}
	}
	if !found || (h.CPU <= 0 && h.Mem <= 0) {
		return trace.Resources{}, false
	}
	return h, true
}
