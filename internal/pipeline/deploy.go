package pipeline

import (
	"sort"

	"unisched/internal/cluster"
	"unisched/internal/trace"
)

// Deploy executes one placement decision against the cluster: BE
// preemption first when the decision asks for it, then the placement
// itself. It is the single commit path both drivers share — the sim's
// Deployer below and the engine's optimistic per-node-version commit both
// call it, so preemption/placement ordering can never diverge between
// offline and online runs.
func Deploy(c *cluster.Cluster, dec Decision, now int64) ([]*cluster.PodState, error) {
	var evicted []*cluster.PodState
	if dec.NeedPreempt {
		evicted = c.PreemptBE(dec.NodeID, dec.Pod.Request, now)
	}
	if _, err := c.Place(dec.Pod, dec.NodeID, now); err != nil {
		return evicted, err
	}
	return evicted, nil
}

// Deployer is the Deployment Module (§4.4): it executes scheduling
// decisions against the cluster and resolves conflicts. When several pods
// are simultaneously scheduled to the same host — which happens whenever
// multiple distributed schedulers (or one scheduler's batched decisions)
// race on stale state — only the decision with the highest score deploys;
// the rest are re-dispatched for later scheduling.
type Deployer struct {
	Cluster *cluster.Cluster
}

// Outcome reports what Apply did with one batch of decisions.
type Outcome struct {
	// Placed are the decisions that were deployed.
	Placed []Decision
	// Requeued are pods that must be rescheduled: conflict losers and
	// pods whose decisions were unplaceable.
	Requeued []*trace.Pod
	// Evicted are BE pods preempted to admit LSR pods; the testbed
	// re-submits them.
	Evicted []*cluster.PodState
}

// ApplyAll deploys every placement decision in the batch, trusting the
// scheduler's in-batch reservations — the single-scheduler fast path. The
// conflict-resolving Apply below is for multiple parallel schedulers whose
// decisions can genuinely race (§4.4).
func (d *Deployer) ApplyAll(ds []Decision, now int64) Outcome {
	var out Outcome
	nodes := len(d.Cluster.Nodes())
	for _, dec := range ds {
		if dec.NodeID < 0 {
			continue
		}
		if dec.NodeID >= nodes {
			// A decision referencing a nonexistent host is a scheduler
			// bug; re-dispatch the pod rather than crashing the testbed.
			out.Requeued = append(out.Requeued, dec.Pod)
			continue
		}
		if !d.Cluster.Node(dec.NodeID).Schedulable() {
			// The target crashed or was cordoned after the scheduler read
			// its state; the decision is stale, not wrong — re-dispatch.
			out.Requeued = append(out.Requeued, dec.Pod)
			continue
		}
		evicted, err := Deploy(d.Cluster, dec, now)
		out.Evicted = append(out.Evicted, evicted...)
		if err != nil {
			continue
		}
		out.Placed = append(out.Placed, dec)
	}
	return out
}

// Apply deploys a batch of decisions at time now with §4.4 conflict
// resolution: when several pods target one host, only the highest score
// deploys and the rest are re-dispatched. Decisions with NodeID < 0 are
// ignored (their pods stay pending at the caller).
func (d *Deployer) Apply(ds []Decision, now int64) Outcome {
	var out Outcome

	// Group placements per node, keeping input order deterministic.
	byNode := make(map[int][]Decision)
	total := len(d.Cluster.Nodes())
	var nodes []int
	for _, dec := range ds {
		if dec.NodeID < 0 {
			continue
		}
		if dec.NodeID >= total {
			out.Requeued = append(out.Requeued, dec.Pod)
			continue
		}
		if !d.Cluster.Node(dec.NodeID).Schedulable() {
			// Stale target (crashed/cordoned between scheduling and
			// deployment): re-dispatch rather than placing on a dead host.
			out.Requeued = append(out.Requeued, dec.Pod)
			continue
		}
		if _, seen := byNode[dec.NodeID]; !seen {
			nodes = append(nodes, dec.NodeID)
		}
		byNode[dec.NodeID] = append(byNode[dec.NodeID], dec)
	}
	sort.Ints(nodes)

	for _, nodeID := range nodes {
		group := byNode[nodeID]
		// Conflict resolution: highest score deploys, rest re-dispatch.
		best := 0
		for i := 1; i < len(group); i++ {
			if group[i].Score > group[best].Score {
				best = i
			}
		}
		for i, dec := range group {
			if i != best {
				out.Requeued = append(out.Requeued, dec.Pod)
				continue
			}
			evicted, err := Deploy(d.Cluster, dec, now)
			out.Evicted = append(out.Evicted, evicted...)
			if err != nil {
				// Already running (duplicate decision): drop silently.
				continue
			}
			out.Placed = append(out.Placed, dec)
		}
	}
	return out
}
