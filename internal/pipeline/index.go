package pipeline

import (
	"sort"
	"sync"
	"sync/atomic"

	"unisched/internal/cluster"
	"unisched/internal/trace"
)

// headroomBins is the bucket-grid resolution per dimension. binEdges are
// the lower bounds of each bin, in normalized resource units (node
// capacities are ~1.0): bin j covers [binEdges[j], binEdges[j+1]), the
// last bin is unbounded above. The spacing is logarithmic because request
// sizes are: most pods ask for a few percent of a host, so fine bins near
// zero separate "almost full" hosts — the ones worth pruning — while one
// coarse bin suffices for near-empty hosts.
const headroomBins = 8

var binEdges = [headroomBins]float64{0, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64}

// binOf maps a headroom value to its bin. Negative headroom (an
// over-committed dimension) lands in bin 0.
func binOf(h float64) int {
	b := 0
	for b+1 < headroomBins && h >= binEdges[b+1] {
		b++
	}
	return b
}

// prunableBin returns the first bin that may contain a node with headroom
// >= need: every node in a lower bin has headroom < binEdges[bin] <= need
// and can be skipped wholesale. need <= 0 prunes nothing.
func prunableBin(need float64) int {
	if need <= 0 {
		return 0
	}
	return binOf(need)
}

// bucketLoc tracks where a node currently sits inside a group. pos < 0
// means the node is not a member.
type bucketLoc struct {
	cb, mb uint8
	pos    int32 // index within the bucket slice, -1 = absent
}

// group indexes one candidate universe (an affinity group, or the whole
// cluster): the schedulable members in ascending ID order, plus the same
// members bucketed on the 2-D static-headroom grid. loc is dense (indexed
// by node ID): reconciliation runs once per adopted clone on the engine's
// hot path, where a map lookup per placement is measurable.
type group struct {
	ordered []int
	buckets [headroomBins][headroomBins][]int
	loc     []bucketLoc
}

func newGroup(n int) *group {
	g := &group{loc: make([]bucketLoc, n)}
	for i := range g.loc {
		g.loc[i].pos = -1
	}
	return g
}

// reconcile brings one node's membership and bucket up to date.
func (g *group) reconcile(id int, in bool, h trace.Resources) {
	if id >= len(g.loc) {
		return
	}
	l := g.loc[id]
	present := l.pos >= 0
	if !in {
		if present {
			g.bucketRemove(id, l)
			g.orderedRemove(id)
		}
		return
	}
	cb, mb := uint8(binOf(h.CPU)), uint8(binOf(h.Mem))
	if present {
		if l.cb == cb && l.mb == mb {
			return
		}
		g.bucketRemove(id, l)
	} else {
		g.orderedInsert(id)
	}
	g.bucketAdd(id, cb, mb)
}

func (g *group) bucketAdd(id int, cb, mb uint8) {
	b := g.buckets[cb][mb]
	g.loc[id] = bucketLoc{cb: cb, mb: mb, pos: int32(len(b))}
	g.buckets[cb][mb] = append(b, id)
}

func (g *group) bucketRemove(id int, l bucketLoc) {
	b := g.buckets[l.cb][l.mb]
	last := len(b) - 1
	if int(l.pos) != last {
		moved := b[last]
		b[l.pos] = moved
		g.loc[moved].pos = l.pos
	}
	g.buckets[l.cb][l.mb] = b[:last]
	g.loc[id].pos = -1
}

func (g *group) orderedInsert(id int) {
	i := sort.SearchInts(g.ordered, id)
	g.ordered = append(g.ordered, 0)
	copy(g.ordered[i+1:], g.ordered[i:])
	g.ordered[i] = id
}

func (g *group) orderedRemove(id int) {
	i := sort.SearchInts(g.ordered, id)
	if i < len(g.ordered) && g.ordered[i] == id {
		g.ordered = append(g.ordered[:i], g.ordered[i+1:]...)
	}
}

// Index is the indexed candidate store behind the Filter stage: for every
// affinity group (and the whole cluster), the schedulable member nodes in
// ascending ID order plus a 2-D bucket grid over static request headroom
// (capacity minus running request sum). It registers itself as a cluster
// observer and reconciles incrementally on every deploy, eviction,
// lifecycle change, and sampling-driven removal — candidate filtering
// never rescans the cluster.
//
// Thread-safety: mutation (observer callbacks, RestrictTo) is serialized
// by mu, and reads (Candidates, Scan) intentionally take no lock. In the
// sim everything is single-threaded. In the engine each scheduler owns a
// private epoch-view cluster: mutation happens only through clone
// adoption on the owning worker's goroutine, so the index is effectively
// single-owner and SetExclusive drops mu from the reconcile path
// entirely — the zero-lock scoring guarantee depends on it. The
// generation counter ticks once per reconcile or rebuild, threading a
// snapshot epoch through the observer hooks: two reads that see the same
// generation saw the identical candidate universe.
type Index struct {
	c  *cluster.Cluster
	mu sync.Mutex
	// exclusive marks a single-owner index (a worker's private view):
	// reconciliation skips mu, the owner provides all ordering.
	exclusive bool
	// gen counts reconciles and rebuilds — the index's snapshot epoch.
	gen atomic.Uint64

	member  []bool // RestrictTo universe; index == node ID
	all     *group
	groups  map[int]*group
	pruning bool

	minCap, maxCap trace.Resources
}

// NewIndex builds the store over the cluster's current state and hooks it
// into the cluster's observer list so it stays current.
func NewIndex(c *cluster.Cluster) *Index {
	ix := &Index{
		c:       c,
		member:  make([]bool, len(c.Nodes())),
		all:     newGroup(len(c.Nodes())),
		groups:  make(map[int]*group),
		pruning: true,
	}
	for i := range ix.member {
		ix.member[i] = true
	}
	for _, n := range c.Nodes() {
		capc := n.Capacity()
		if ix.maxCap.CPU == 0 && ix.maxCap.Mem == 0 {
			ix.minCap, ix.maxCap = capc, capc
		}
		if capc.CPU < ix.minCap.CPU {
			ix.minCap.CPU = capc.CPU
		}
		if capc.Mem < ix.minCap.Mem {
			ix.minCap.Mem = capc.Mem
		}
		if capc.CPU > ix.maxCap.CPU {
			ix.maxCap.CPU = capc.CPU
		}
		if capc.Mem > ix.maxCap.Mem {
			ix.maxCap.Mem = capc.Mem
		}
		if _, ok := ix.groups[n.Node.Group]; !ok {
			ix.groups[n.Node.Group] = newGroup(len(c.Nodes()))
		}
	}
	ix.rebuild()
	c.AddObserver(ix.Reconcile)
	return ix
}

// CapRange returns the smallest and largest node capacity per dimension —
// the inputs conservative headroom bounds need on heterogeneous clusters.
func (ix *Index) CapRange() (min, max trace.Resources) { return ix.minCap, ix.maxCap }

// SetPruning toggles headroom-bucket pruning. Equivalence tests and the
// BenchmarkPipelineVsScan baseline disable it to force full scans.
func (ix *Index) SetPruning(on bool) {
	ix.mu.Lock()
	ix.pruning = on
	ix.mu.Unlock()
}

// headroom is the static per-dimension request headroom the buckets key
// on. In-batch reservations are deliberately excluded: they reset every
// batch, and bounds are valid without them (reservations only shrink
// headroom further).
func headroom(n *cluster.NodeState) trace.Resources {
	return n.Capacity().Sub(n.ReqSum())
}

// Reconcile brings one node up to date after any state change. It is
// idempotent and cheap (O(1) amortized), so the cluster calls it on every
// placement, removal, and lifecycle transition.
func (ix *Index) Reconcile(id int) {
	if id < 0 || id >= len(ix.member) {
		return
	}
	if !ix.exclusive {
		ix.mu.Lock()
		defer ix.mu.Unlock()
	}
	n := ix.c.Node(id)
	in := ix.member[id] && n.Schedulable()
	h := headroom(n)
	ix.all.reconcile(id, in, h)
	ix.groups[n.Node.Group].reconcile(id, in, h)
	ix.gen.Add(1)
}

// SetExclusive marks the index single-owner: observer reconciliation
// stops taking the internal mutex. The engine sets it on each worker's
// private view index, whose only mutator is clone adoption on the
// worker's own goroutine — part of the zero-lock snapshot scoring path.
func (ix *Index) SetExclusive(on bool) {
	ix.mu.Lock()
	ix.exclusive = on
	ix.mu.Unlock()
}

// Generation returns the index's snapshot epoch: it advances on every
// reconcile and rebuild, so equal generations bracket an unchanged
// candidate universe.
func (ix *Index) Generation() uint64 { return ix.gen.Load() }

// rebuild reconstructs every group from the cluster (initial build and
// RestrictTo). Caller holds mu (or is single-threaded construction).
func (ix *Index) rebuild() {
	ix.all = newGroup(len(ix.member))
	for gid := range ix.groups {
		ix.groups[gid] = newGroup(len(ix.member))
	}
	for _, n := range ix.c.Nodes() {
		id := n.Node.ID
		in := ix.member[id] && n.Schedulable()
		h := headroom(n)
		ix.all.reconcile(id, in, h)
		ix.groups[n.Node.Group].reconcile(id, in, h)
	}
	ix.gen.Add(1)
}

// RestrictTo limits the candidate universe to the given node IDs (unknown
// IDs are ignored). Affinity groups compose with the partition — each
// group's candidates become the intersection of the group and the
// partition; a pod whose affinity group has no nodes in the partition
// simply finds no candidates and is retried elsewhere.
func (ix *Index) RestrictTo(ids []int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for i := range ix.member {
		ix.member[i] = false
	}
	for _, id := range ids {
		if id >= 0 && id < len(ix.member) {
			ix.member[id] = true
		}
	}
	ix.rebuild()
}

// groupFor resolves the candidate universe for a pod's affinity.
func (ix *Index) groupFor(p *trace.Pod) *group {
	if aff := p.App().Affinity; aff >= 0 {
		g := ix.groups[aff]
		if g == nil {
			return newGroup(0)
		}
		return g
	}
	return ix.all
}

// Candidates returns the node IDs satisfying the pod's affinity, excluding
// Draining/Down hosts and nodes outside the RestrictTo partition, in
// ascending ID order without allocating. The slice is live; callers must
// not modify or retain it across cluster mutations.
func (ix *Index) Candidates(p *trace.Pod) []int { return ix.groupFor(p).ordered }

// Universe returns the full (affinity-free) candidate list: the
// schedulable members of the RestrictTo partition in ascending ID order.
// The slice is live; callers must not modify it.
func (ix *Index) Universe() []int { return ix.all.ordered }

// Scan iterates the pod's candidates through the bucket grid, skipping
// buckets whose static headroom provably cannot satisfy need, and calls
// visit for each surviving node. It returns how many nodes were pruned,
// split per dimension: a pruned node counts toward a dimension when its
// bucket's bound proves that dimension insufficient (a node pruned on CPU
// alone may also have failed memory — bucket-level pruning cannot know,
// so per-dimension pruned counts are conservative per dimension).
// Iteration order is bucket-major and deterministic; callers must not
// rely on ascending ID order and should reduce with an explicit
// lowest-ID tie-break.
func (ix *Index) Scan(p *trace.Pod, need trace.Resources, visit func(id int)) (prunedCPU, prunedMem, pruned int) {
	return ix.ScanRuns(p, need, func(ids []int) {
		for _, id := range ids {
			visit(id)
		}
	})
}

// ScanRuns is Scan with bucket-granularity delivery: visit receives each
// surviving bucket's node-ID slice whole, so a hot caller amortizes the
// indirect call over the run and keeps its per-node work inlined. The
// slice is the index's own storage — callers must not retain or mutate
// it, and must not mutate the index during the scan.
func (ix *Index) ScanRuns(p *trace.Pod, need trace.Resources, visit func(ids []int)) (prunedCPU, prunedMem, pruned int) {
	g := ix.groupFor(p)
	kc, km := prunableBin(need.CPU), prunableBin(need.Mem)
	if !ix.pruning {
		kc, km = 0, 0
	}
	for cb := 0; cb < headroomBins; cb++ {
		for mb := 0; mb < headroomBins; mb++ {
			b := g.buckets[cb][mb]
			if len(b) == 0 {
				continue
			}
			if cb < kc || mb < km {
				if cb < kc {
					prunedCPU += len(b)
				}
				if mb < km {
					prunedMem += len(b)
				}
				pruned += len(b)
				continue
			}
			visit(b)
		}
	}
	return prunedCPU, prunedMem, pruned
}
