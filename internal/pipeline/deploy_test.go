package pipeline

import (
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/trace"
)

func smallWorkload(t *testing.T, nodes int) *trace.Workload {
	t.Helper()
	cfg := trace.SmallConfig()
	cfg.NumNodes = nodes
	return trace.MustGenerate(cfg)
}

func TestDeployerConflictResolution(t *testing.T) {
	w := smallWorkload(t, 4)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	d := &Deployer{Cluster: c}
	p1, p2, p3 := w.Pods[0], w.Pods[1], w.Pods[2]
	out := d.Apply([]Decision{
		{Pod: p1, NodeID: 0, Score: 0.5},
		{Pod: p2, NodeID: 0, Score: 0.9}, // conflict winner
		{Pod: p3, NodeID: 1, Score: 0.1},
	}, 100)
	if len(out.Placed) != 2 {
		t.Fatalf("placed %d, want 2", len(out.Placed))
	}
	if len(out.Requeued) != 1 || out.Requeued[0].ID != p1.ID {
		t.Fatalf("requeued = %+v, want p1", out.Requeued)
	}
	if c.PodState(p2.ID) == nil || c.PodState(p2.ID).NodeID != 0 {
		t.Error("winner not placed on node 0")
	}
	if c.PodState(p1.ID) != nil {
		t.Error("loser was placed")
	}
}

func TestDeployerPreemption(t *testing.T) {
	w := smallWorkload(t, 2)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	d := &Deployer{Cluster: c}
	var be []*trace.Pod
	var lsr *trace.Pod
	for _, p := range w.Pods {
		if p.SLO == trace.SLOBE && len(be) < 10 {
			be = append(be, p)
		}
		if p.SLO == trace.SLOLSR && lsr == nil {
			lsr = p
		}
	}
	for _, p := range be {
		if _, err := c.Place(p, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	out := d.Apply([]Decision{{Pod: lsr, NodeID: 0, NeedPreempt: true, Score: 1}}, 50)
	if len(out.Placed) != 1 {
		t.Fatalf("LSR not placed")
	}
	if len(out.Evicted) == 0 {
		t.Fatal("nothing evicted")
	}
	for _, ev := range out.Evicted {
		if ev.Pod.SLO != trace.SLOBE || !ev.Preempted {
			t.Error("evicted pod not a preempted BE pod")
		}
	}
}

func TestDeployerIgnoresUnplaced(t *testing.T) {
	w := smallWorkload(t, 2)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	d := &Deployer{Cluster: c}
	out := d.Apply([]Decision{{Pod: w.Pods[0], NodeID: -1, Reason: ReasonMem}}, 0)
	if len(out.Placed) != 0 || len(out.Requeued) != 0 {
		t.Error("unplaced decision should be a no-op")
	}
}

func TestDeployerRejectsInvalidNode(t *testing.T) {
	// Failure injection: a buggy scheduler proposing a nonexistent host
	// must not crash the testbed; the pod is re-dispatched.
	w := smallWorkload(t, 2)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	d := &Deployer{Cluster: c}
	for _, apply := range []func([]Decision, int64) Outcome{d.ApplyAll, d.Apply} {
		out := apply([]Decision{{Pod: w.Pods[0], NodeID: 99, Score: 1}}, 0)
		if len(out.Placed) != 0 {
			t.Fatal("invalid node deployed")
		}
		if len(out.Requeued) != 1 || out.Requeued[0].ID != w.Pods[0].ID {
			t.Fatalf("pod not requeued: %+v", out)
		}
	}
}
