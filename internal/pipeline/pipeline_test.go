package pipeline

import (
	"testing"

	"unisched/internal/cluster"
	"unisched/internal/trace"
)

// reqFit is the test stand-in for a conservative request-based filter:
// requests plus reservations must fit capacity in both dimensions. It
// exposes the exact headroom bound (the pod's request), so the indexed
// scan may prune buckets.
type reqFit struct{}

func (reqFit) FilterName() string { return "req-fit" }

func (reqFit) Filter(n *cluster.NodeState, p *trace.Pod, resv trace.Resources) (bool, bool) {
	load := n.ReqSum().Add(resv).Add(p.Request)
	capc := n.Capacity()
	return load.CPU <= capc.CPU, load.Mem <= capc.Mem
}

func (reqFit) MinHeadroom(p *trace.Pod, _, _ trace.Resources) (trace.Resources, bool) {
	return p.Request, true
}

// spreadScore prefers emptier hosts, so placements spread and headroom
// buckets churn during a test run.
type spreadScore struct{}

func (spreadScore) ScoreName() string { return "spread" }

func (spreadScore) Score(n *cluster.NodeState, _ *trace.Pod) float64 {
	return -(n.ReqSum().CPU + n.ReqSum().Mem)
}

// constScore makes every admissible host tie, exposing the tie-break rule.
type constScore struct{}

func (constScore) ScoreName() string                                { return "const" }
func (constScore) Score(_ *cluster.NodeState, _ *trace.Pod) float64 { return 1 }

// rejectAll is a prefilter that rejects every pod.
type rejectAll struct{}

func (rejectAll) PreFilterName() string                 { return "reject-all" }
func (rejectAll) PreFilter(_ *trace.Pod) (Reason, bool) { return ReasonOther, false }

func TestClassify(t *testing.T) {
	cases := []struct {
		cpu, mem int
		want     Reason
	}{
		{1, 1, ReasonCPUMem},
		{1, 0, ReasonCPU},
		{0, 1, ReasonMem},
		{0, 0, ReasonOther},
	}
	for _, c := range cases {
		if got := Classify(c.cpu, c.mem); got != c.want {
			t.Errorf("Classify(%d,%d) = %v, want %v", c.cpu, c.mem, got, c.want)
		}
	}
}

func TestOvercommitBound(t *testing.T) {
	// oc >= 1: headroom < request - (oc-1)*maxCap implies rejection on any
	// node, because reqSum + req > oc*cap <=> cap - reqSum < req - (oc-1)*cap
	// and (oc-1)*cap <= (oc-1)*maxCap.
	almost := func(a, b float64) bool { d := a - b; return d < 1e-12 && d > -1e-12 }
	if got := OvercommitBound(0.5, 1.0, 0.8, 1.2); got != 0.5 {
		t.Errorf("oc=1 bound = %v, want request itself", got)
	}
	if got := OvercommitBound(0.5, 1.5, 0.8, 1.2); !almost(got, 0.5-0.5*1.2) {
		t.Errorf("oc=1.5 bound = %v", got)
	}
	// oc < 1: the test is tighter than capacity, so the bound grows by
	// (1-oc)*minCap.
	if got := OvercommitBound(0.5, 0.8, 0.8, 1.2); !almost(got, 0.5+0.2*0.8) {
		t.Errorf("oc=0.8 bound = %v", got)
	}
}

func TestBinMapping(t *testing.T) {
	if binOf(-0.5) != 0 || binOf(0) != 0 || binOf(0.005) != 0 {
		t.Error("tiny/negative headroom must land in bin 0")
	}
	if binOf(0.01) != 1 || binOf(0.64) != 7 || binOf(99) != 7 {
		t.Errorf("bin edges wrong: binOf(0.01)=%d binOf(0.64)=%d", binOf(0.01), binOf(0.64))
	}
	if prunableBin(0) != 0 || prunableBin(-1) != 0 {
		t.Error("non-positive need must prune nothing")
	}
	// A node in any bin below prunableBin(need) has headroom < need.
	for _, need := range []float64{0.005, 0.01, 0.05, 0.3, 2.0} {
		k := prunableBin(need)
		if k > 0 && binEdges[k] > need {
			t.Errorf("prunableBin(%v)=%d but edge %v > need — would prune feasible nodes",
				need, k, binEdges[k])
		}
	}
}

func TestIndexReconcileTracksLifecycle(t *testing.T) {
	w := smallWorkload(t, 6)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	ix := NewIndex(c)
	var free *trace.Pod
	for _, p := range w.Pods {
		if p.App().Affinity < 0 {
			free = p
			break
		}
	}
	if free == nil {
		t.Skip("no affinity-free pod")
	}
	if got := len(ix.Candidates(free)); got != 6 {
		t.Fatalf("initial candidates = %d, want 6", got)
	}

	// Placements reshuffle headroom buckets via the observer — the bucketed
	// membership must stay exactly the ordered membership.
	for i, p := range w.Pods[:20] {
		if _, err := c.Place(p, i%6, 0); err != nil {
			t.Fatal(err)
		}
	}
	checkIndexConsistent(t, ix, free, 6)

	// Lifecycle transitions drop and restore candidates.
	c.FailNode(1, 0)
	if got := len(ix.Candidates(free)); got != 5 {
		t.Fatalf("after fail: %d candidates, want 5", got)
	}
	for _, id := range ix.Candidates(free) {
		if id == 1 {
			t.Fatal("failed node still a candidate")
		}
	}
	c.RecoverNode(1)
	if got := len(ix.Candidates(free)); got != 6 {
		t.Fatalf("after recover: %d candidates, want 6", got)
	}
	c.DrainNode(2, 60)
	for _, id := range ix.Candidates(free) {
		if id == 2 {
			t.Fatal("draining node still a candidate")
		}
	}
	checkIndexConsistent(t, ix, free, 5)
}

// checkIndexConsistent verifies the bucket grid holds exactly the ordered
// membership, each node in the bucket matching its current headroom.
func checkIndexConsistent(t *testing.T, ix *Index, p *trace.Pod, want int) {
	t.Helper()
	cands := ix.Candidates(p)
	if len(cands) != want {
		t.Fatalf("candidates = %d, want %d", len(cands), want)
	}
	for i := 1; i < len(cands); i++ {
		if cands[i] <= cands[i-1] {
			t.Fatal("candidates not in ascending ID order")
		}
	}
	seen := make(map[int]bool)
	ix.Scan(p, trace.Resources{}, func(id int) {
		if seen[id] {
			t.Fatalf("node %d appears twice in bucket scan", id)
		}
		seen[id] = true
		h := headroom(ix.c.Node(id))
		g := ix.groupFor(p)
		l := g.loc[id]
		if int(l.cb) != binOf(h.CPU) || int(l.mb) != binOf(h.Mem) {
			t.Fatalf("node %d in bucket (%d,%d), headroom %v wants (%d,%d)",
				id, l.cb, l.mb, h, binOf(h.CPU), binOf(h.Mem))
		}
	})
	if len(seen) != len(cands) {
		t.Fatalf("bucket scan visited %d nodes, ordered membership has %d", len(seen), len(cands))
	}
}

func TestIndexRestrictToComposesWithAffinity(t *testing.T) {
	w := smallWorkload(t, 8)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	ix := NewIndex(c)
	ix.RestrictTo([]int{0, 2, 4, 6, 99})
	if got := ix.Universe(); len(got) != 4 {
		t.Fatalf("universe = %v, want the 4 valid partition members", got)
	}
	// An affinity-constrained pod sees partition ∩ group.
	app := w.Apps[0]
	app.Affinity = c.Node(1).Node.Group
	var pod *trace.Pod
	for _, p := range w.Pods {
		if p.AppID == app.ID {
			pod = p
			break
		}
	}
	if pod == nil {
		t.Skip("no pod for app 0")
	}
	for _, id := range ix.Candidates(pod) {
		if id%2 != 0 {
			t.Fatalf("candidate %d outside the partition", id)
		}
		if c.Node(id).Node.Group != app.Affinity {
			t.Fatalf("candidate %d outside the affinity group", id)
		}
	}
	// Restoring the full universe brings every schedulable node back.
	all := make([]int, 8)
	for i := range all {
		all[i] = i
	}
	ix.RestrictTo(all)
	if got := len(ix.Universe()); got != 8 {
		t.Fatalf("restored universe = %d, want 8", got)
	}
}

// TestSelectPruningEquivalence is the tentpole acceptance check in unit
// form: the indexed bucket-pruned scan must choose exactly the hosts a full
// scan chooses, while provably visiting fewer nodes.
func TestSelectPruningEquivalence(t *testing.T) {
	run := func(pruning bool) ([]int, StatsSnapshot) {
		w := smallWorkload(t, 10)
		c := cluster.New(w.Nodes, cluster.DefaultPhysics())
		pl := New(c)
		pl.Index().SetPruning(pruning)
		sp := &Spec{
			Filters: []FilterPlugin{reqFit{}},
			Scores:  []WeightedScore{{Plugin: spreadScore{}, Weight: 1}},
		}
		limit := len(w.Pods)
		if limit > 600 {
			limit = 600
		}
		var nodes []int
		for start := 0; start < limit; start += 16 {
			end := start + 16
			if end > limit {
				end = limit
			}
			pl.BeginBatch()
			for _, p := range w.Pods[start:end] {
				d := pl.Select(p, sp)
				nodes = append(nodes, d.NodeID)
				if d.NodeID >= 0 {
					if _, err := c.Place(p, d.NodeID, 0); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return nodes, pl.Stats().Snapshot()
	}

	pruned, prunedStats := run(true)
	full, fullStats := run(false)
	if len(pruned) != len(full) {
		t.Fatalf("decision counts differ: %d vs %d", len(pruned), len(full))
	}
	for i := range pruned {
		if pruned[i] != full[i] {
			t.Fatalf("decision %d differs: pruned scan chose %d, full scan %d",
				i, pruned[i], full[i])
		}
	}
	if fullStats.PrunedNodes != 0 {
		t.Fatalf("full scan reported %d pruned nodes", fullStats.PrunedNodes)
	}
	if prunedStats.PrunedNodes == 0 {
		t.Fatal("pruning never skipped a bucket — the equivalence test is vacuous")
	}
	if prunedStats.VisitedNodes >= fullStats.VisitedNodes {
		t.Fatalf("pruned scan visited %d nodes, full scan %d — no work saved",
			prunedStats.VisitedNodes, fullStats.VisitedNodes)
	}
}

func TestSelectTieBreaksToLowestID(t *testing.T) {
	// Every empty host ties under constScore; bucket-major iteration order
	// must not leak: the winner is the lowest node ID, as in a first-wins
	// ascending scan.
	w := smallWorkload(t, 8)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	pl := New(c)
	sp := &Spec{
		Filters: []FilterPlugin{reqFit{}},
		Scores:  []WeightedScore{{Plugin: constScore{}, Weight: 1}},
	}
	var free *trace.Pod
	for _, p := range w.Pods {
		if p.App().Affinity < 0 {
			free = p
			break
		}
	}
	if free == nil {
		t.Skip("no affinity-free pod")
	}
	pl.BeginBatch()
	if d := pl.Select(free, sp); d.NodeID != 0 {
		t.Fatalf("tie broke to node %d, want 0", d.NodeID)
	}
}

func TestSelectPreFilterStage(t *testing.T) {
	w := smallWorkload(t, 4)
	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	pl := New(c)
	sp := &Spec{
		Pre:     []PreFilterPlugin{rejectAll{}},
		Filters: []FilterPlugin{reqFit{}},
	}
	pl.BeginBatch()
	d := pl.Select(w.Pods[0], sp)
	if d.NodeID != -1 || d.Reason != ReasonOther {
		t.Fatalf("prefiltered pod got %+v", d)
	}
	sn := pl.Stats().Snapshot()
	if sn.PrefilterRejects != 1 {
		t.Errorf("prefilter rejects = %d, want 1", sn.PrefilterRejects)
	}
	if sn.VisitedNodes != 0 {
		t.Errorf("prefiltered pod still visited %d nodes", sn.VisitedNodes)
	}
}

func TestLedger(t *testing.T) {
	w := smallWorkload(t, 2)
	led := NewLedger(2)
	p1, p2 := w.Pods[0], w.Pods[1]
	led.Add(0, p1)
	led.Add(0, p2)
	want := p1.Request.Add(p2.Request)
	if got := led.Reserved(0); got != want {
		t.Errorf("reserved = %v, want %v", got, want)
	}
	if got := len(led.Pods(0)); got != 2 {
		t.Errorf("reserved pods = %d, want 2", got)
	}
	if got := led.Reserved(1); got != (trace.Resources{}) {
		t.Errorf("untouched node reserved %v", got)
	}
	led.Begin()
	if got := led.Reserved(0); got != (trace.Resources{}) {
		t.Errorf("Begin did not clear: %v", got)
	}
}

func TestStatsMergeAndFinalize(t *testing.T) {
	var a, b Stats
	a.decisions.Store(2)
	a.visitedNodes.Store(10)
	a.candidateNodes.Store(20)
	a.prunedNodes.Store(4)
	b.decisions.Store(2)
	b.visitedNodes.Store(6)
	b.candidateNodes.Store(12)

	var sn StatsSnapshot
	a.AddTo(&sn)
	b.AddTo(&sn)
	sn.Finalize()
	if sn.Decisions != 4 || sn.VisitedNodes != 16 || sn.PrunedNodes != 4 {
		t.Fatalf("merged counters wrong: %+v", sn)
	}
	if sn.NodesVisitedPerDecision != 4 {
		t.Errorf("nodes visited per decision = %v, want 4", sn.NodesVisitedPerDecision)
	}
	if sn.CandidatesPerDecision != 8 {
		t.Errorf("candidates per decision = %v, want 8", sn.CandidatesPerDecision)
	}
	if sn.NodesPrunedPerDecision != 1 {
		t.Errorf("nodes pruned per decision = %v, want 1", sn.NodesPrunedPerDecision)
	}
}
