package pipeline

import "unisched/internal/trace"

// Ledger is the in-batch reservation stage: a scheduler deciding a batch
// of pods must account for its own earlier decisions before they deploy —
// otherwise every pod in the batch piles onto the same "best" host. The
// ledger records both the reserved request mass per node (admission input)
// and the reserved pods themselves (Optum's Eq. 7-8 pairing treats them
// like running pods). Medea shares one ledger across its greedy and ILP
// tiers by construction: both tiers reserve through the same Pipeline.
type Ledger struct {
	resv map[int]trace.Resources
	pods map[int][]*trace.Pod
}

// NewLedger returns an empty reservation ledger.
func NewLedger() *Ledger {
	return &Ledger{
		resv: make(map[int]trace.Resources),
		pods: make(map[int][]*trace.Pod),
	}
}

// Begin clears the ledger; schedulers call it at the top of every
// Schedule invocation.
func (l *Ledger) Begin() {
	for k := range l.resv {
		delete(l.resv, k)
	}
	for k := range l.pods {
		delete(l.pods, k)
	}
}

// Add records that this batch has decided to place p on node id.
func (l *Ledger) Add(id int, p *trace.Pod) {
	l.resv[id] = l.resv[id].Add(p.Request)
	l.pods[id] = append(l.pods[id], p)
}

// Reserved returns the requests this batch has already promised to node id.
func (l *Ledger) Reserved(id int) trace.Resources { return l.resv[id] }

// Pods returns the pods this batch has promised to node id. The slice is
// shared; callers must not modify it.
func (l *Ledger) Pods(id int) []*trace.Pod { return l.pods[id] }
