package pipeline

import "unisched/internal/trace"

// Ledger is the in-batch reservation stage: a scheduler deciding a batch
// of pods must account for its own earlier decisions before they deploy —
// otherwise every pod in the batch piles onto the same "best" host. The
// ledger records both the reserved request mass per node (admission input)
// and the reserved pods themselves (Optum's Eq. 7-8 pairing treats them
// like running pods). Medea shares one ledger across its greedy and ILP
// tiers by construction: both tiers reserve through the same Pipeline.
//
// Storage is dense — slices indexed by node ID — because Reserved sits on
// the scan hot path (one lookup per visited candidate, concurrently from
// the parallel scan's goroutines): a slice read costs an index, a map read
// costs hashing plus probing. A dirty list keeps Begin proportional to the
// nodes the previous batch actually touched.
type Ledger struct {
	resv  []trace.Resources
	pods  [][]*trace.Pod
	dirty []int
	// slab carves the initial per-node pod slices in 4-pod views from a
	// shared chunk: the first reservation on a node then costs no
	// allocation. A node that collects more than 4 reservations in one
	// batch grows onto its own array; the slices persist across Begin.
	slab []*trace.Pod
}

// NewLedger returns an empty reservation ledger over a cluster of `nodes`
// hosts (node IDs are dense in [0, nodes)).
func NewLedger(nodes int) *Ledger {
	return &Ledger{
		resv:  make([]trace.Resources, nodes),
		pods:  make([][]*trace.Pod, nodes),
		dirty: make([]int, 0, 64),
	}
}

// Begin clears the ledger; schedulers call it at the top of every
// Schedule invocation. Per-node pod slices are truncated, not freed, so
// steady-state batches reserve without allocating.
func (l *Ledger) Begin() {
	for _, id := range l.dirty {
		l.resv[id] = trace.Resources{}
		l.pods[id] = l.pods[id][:0]
	}
	l.dirty = l.dirty[:0]
}

// Add records that this batch has decided to place p on node id.
func (l *Ledger) Add(id int, p *trace.Pod) {
	if len(l.pods[id]) == 0 {
		l.dirty = append(l.dirty, id)
		if l.pods[id] == nil {
			if len(l.slab) < 4 {
				l.slab = make([]*trace.Pod, 256)
			}
			l.pods[id] = l.slab[:0:4]
			l.slab = l.slab[4:]
		}
	}
	l.resv[id] = l.resv[id].Add(p.Request)
	l.pods[id] = append(l.pods[id], p)
}

// Reserved returns the requests this batch has already promised to node id.
func (l *Ledger) Reserved(id int) trace.Resources { return l.resv[id] }

// Pods returns the pods this batch has promised to node id. The slice is
// shared and reused across batches; callers must not modify or retain it.
func (l *Ledger) Pods(id int) []*trace.Pod { return l.pods[id] }
