package pipeline

import (
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage in the latency/visit counters.
type Stage int

// Pipeline stages, in execution order. StageScan fuses Filter and Score:
// the scan interleaves them per node (scores run only on admitted nodes),
// so their latencies are not separable without per-node clocking; their
// visit counts are tracked separately (VisitedNodes vs ScoredNodes).
const (
	StagePreFilter Stage = iota
	StageCandidates
	StageSample
	StageScan
	StagePreempt
	numStages
)

var stageNames = [numStages]string{"prefilter", "candidates", "sample", "scan", "preempt"}

// String names the stage.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "?"
	}
	return stageNames[s]
}

// Stats instruments one pipeline with lock-free per-stage counters. All
// fields are atomics: the engine's scheduler workers update them
// concurrently and the metrics registry snapshots them at any time.
type Stats struct {
	decisions        atomic.Int64
	placed           atomic.Int64
	preempts         atomic.Int64
	prefilterRejects atomic.Int64

	candidateNodes atomic.Int64 // universe sizes, summed over decisions
	sampledNodes   atomic.Int64 // candidates surviving the Sample stage
	prunedNodes    atomic.Int64 // skipped via headroom buckets
	prunedCPU      atomic.Int64
	prunedMem      atomic.Int64
	visitedNodes   atomic.Int64 // per-node filter/eval executions
	scoredNodes    atomic.Int64 // score executions (admitted nodes)

	// Prediction-summary cache counters (Optum's incremental per-node
	// summaries; zero for schedulers that don't use them).
	summaryHits     atomic.Int64
	summaryAppends  atomic.Int64
	summaryRebuilds atomic.Int64

	// spanEvery samples stage-latency clock reads: spans are measured on
	// every spanEvery-th decision (<=1 = all, the default). Counters stay
	// exact either way; snapshots extrapolate StageMicros from the timed
	// subset. The engine's workers set this — two to three time.Now calls
	// per decision are measurable at six-digit decisions per second.
	spanEvery      int64
	timedDecisions atomic.Int64

	nanos [numStages]atomic.Int64
}

// SetSpanSampling makes the stats measure stage spans on one decision in
// every (1 = all). Counters are unaffected; StageMicros becomes an
// extrapolated estimate. Not safe to change while decisions are in
// flight.
func (st *Stats) SetSpanSampling(every int) {
	st.spanEvery = int64(every)
}

// AddSummary accumulates prediction-summary cache counters: cache hits at
// score time, O(1) observer appends, and full rebuilds. It implements
// predictor.StatsSink.
func (st *Stats) AddSummary(hits, appends, rebuilds int64) {
	st.summaryHits.Add(hits)
	st.summaryAppends.Add(appends)
	st.summaryRebuilds.Add(rebuilds)
}

// observe adds d to one stage's latency accumulator.
func (st *Stats) observe(s Stage, d time.Duration) {
	st.nanos[s].Add(d.Nanoseconds())
}

// StatsSnapshot is a JSON-ready view of a Stats at one instant. Snapshots
// from several pipelines (one per engine worker) merge additively via
// Merge; call Finalize once after merging to fill the derived
// per-decision rates.
type StatsSnapshot struct {
	Decisions        int64 `json:"decisions"`
	Placed           int64 `json:"placed"`
	Preemptions      int64 `json:"preemptions"`
	PrefilterRejects int64 `json:"prefilter_rejects,omitempty"`

	CandidateNodes int64 `json:"candidate_nodes"`
	SampledNodes   int64 `json:"sampled_nodes"`
	PrunedNodes    int64 `json:"pruned_nodes"`
	PrunedCPU      int64 `json:"pruned_cpu,omitempty"`
	PrunedMem      int64 `json:"pruned_mem,omitempty"`
	VisitedNodes   int64 `json:"visited_nodes"`
	ScoredNodes    int64 `json:"scored_nodes"`

	SummaryHits     int64 `json:"summary_hits,omitempty"`
	SummaryAppends  int64 `json:"summary_appends,omitempty"`
	SummaryRebuilds int64 `json:"summary_rebuilds,omitempty"`

	// StageMicros is total microseconds spent per stage.
	StageMicros map[string]float64 `json:"stage_micros"`

	// Derived per-decision rates (Finalize).
	NodesVisitedPerDecision float64 `json:"nodes_visited_per_decision"`
	NodesPrunedPerDecision  float64 `json:"nodes_pruned_per_decision"`
	CandidatesPerDecision   float64 `json:"candidates_per_decision"`
	// StageMicrosPerDecision is mean microseconds per decision per stage.
	StageMicrosPerDecision map[string]float64 `json:"stage_micros_per_decision"`
}

// Snapshot captures the counters and computes the derived rates.
func (st *Stats) Snapshot() StatsSnapshot {
	var sn StatsSnapshot
	st.AddTo(&sn)
	sn.Finalize()
	return sn
}

// AddTo accumulates the raw counters into sn (merging across pipelines).
func (st *Stats) AddTo(sn *StatsSnapshot) {
	sn.Decisions += st.decisions.Load()
	sn.Placed += st.placed.Load()
	sn.Preemptions += st.preempts.Load()
	sn.PrefilterRejects += st.prefilterRejects.Load()
	sn.CandidateNodes += st.candidateNodes.Load()
	sn.SampledNodes += st.sampledNodes.Load()
	sn.PrunedNodes += st.prunedNodes.Load()
	sn.PrunedCPU += st.prunedCPU.Load()
	sn.PrunedMem += st.prunedMem.Load()
	sn.VisitedNodes += st.visitedNodes.Load()
	sn.ScoredNodes += st.scoredNodes.Load()
	sn.SummaryHits += st.summaryHits.Load()
	sn.SummaryAppends += st.summaryAppends.Load()
	sn.SummaryRebuilds += st.summaryRebuilds.Load()
	if sn.StageMicros == nil {
		sn.StageMicros = make(map[string]float64, int(numStages))
	}
	// Under span sampling, scale the timed subset's totals up to the full
	// decision count so merged snapshots stay comparable across pipelines
	// with different sampling settings.
	scale := 1.0
	if timed := st.timedDecisions.Load(); timed > 0 {
		if dec := st.decisions.Load(); dec > timed {
			scale = float64(dec) / float64(timed)
		}
	}
	for s := Stage(0); s < numStages; s++ {
		sn.StageMicros[s.String()] += float64(st.nanos[s].Load()) * scale / 1e3
	}
}

// Finalize fills the derived per-decision rates from the raw counters.
func (sn *StatsSnapshot) Finalize() {
	if sn.Decisions == 0 {
		return
	}
	d := float64(sn.Decisions)
	sn.NodesVisitedPerDecision = float64(sn.VisitedNodes) / d
	sn.NodesPrunedPerDecision = float64(sn.PrunedNodes) / d
	sn.CandidatesPerDecision = float64(sn.CandidateNodes) / d
	sn.StageMicrosPerDecision = make(map[string]float64, len(sn.StageMicros))
	for k, v := range sn.StageMicros {
		sn.StageMicrosPerDecision[k] = v / d
	}
}
