package pipeline

import (
	"sync"
	"time"

	"unisched/internal/cluster"
	"unisched/internal/obs"
	"unisched/internal/trace"
)

// parallelScanMin is the candidate-count threshold below which a parallel
// scan is not worth the goroutine overhead.
const parallelScanMin = 16

// Pipeline binds the staged plugin machinery to one cluster view: the
// indexed candidate store, the in-batch reservation ledger, and the
// per-stage stats. Every scheduler owns one Pipeline (via sched.Base) and
// drives each pod through Select with its declarative Spec.
type Pipeline struct {
	c     *cluster.Cluster
	idx   *Index
	led   *Ledger
	stats *Stats
	// scanBuf is the parallel scan's per-decision result scratch, reused
	// across decisions (Select runs serially on the batch goroutine; only
	// the per-node evaluation inside one decision fans out).
	scanBuf []scanResult
	// rec, when set, samples per-pod decision traces. The nil check guards
	// every trace touch so the disabled path costs nothing.
	rec *obs.Recorder
	// batch holds the traces sampled during the current batch, in Select
	// order, so drivers can amend exactly the attempt they committed.
	batch []*obs.DecisionTrace
}

// scanResult is one candidate's evaluation outcome in a parallel scan.
type scanResult struct {
	id    int
	ok    bool
	cpuNo bool
	memNo bool
	score float64
}

// New builds a pipeline over the cluster.
func New(c *cluster.Cluster) *Pipeline {
	return &Pipeline{c: c, idx: NewIndex(c), led: NewLedger(len(c.Nodes())), stats: &Stats{}}
}

// Cluster returns the underlying cluster view.
func (pl *Pipeline) Cluster() *cluster.Cluster { return pl.c }

// Index returns the indexed candidate store.
func (pl *Pipeline) Index() *Index { return pl.idx }

// Ledger returns the in-batch reservation ledger.
func (pl *Pipeline) Ledger() *Ledger { return pl.led }

// Stats returns the live per-stage counters.
func (pl *Pipeline) Stats() *Stats { return pl.stats }

// SetRecorder attaches a decision-trace recorder (nil detaches). The
// pipeline samples one trace per Recorder policy for each Select.
func (pl *Pipeline) SetRecorder(r *obs.Recorder) { pl.rec = r }

// Recorder returns the attached decision-trace recorder (possibly nil).
func (pl *Pipeline) Recorder() *obs.Recorder { return pl.rec }

// LastTrace returns the trace of the most recent Select in this batch, or
// nil when that decision was not sampled. Schedulers use it right after
// Select to attach score decompositions.
func (pl *Pipeline) LastTrace() *obs.DecisionTrace {
	if len(pl.batch) == 0 {
		return nil
	}
	return pl.batch[len(pl.batch)-1]
}

// BatchTraces returns the traces sampled during the current batch, in
// decision order. The slice is reused across batches; drivers consume it
// before the next BeginBatch.
func (pl *Pipeline) BatchTraces() []*obs.DecisionTrace { return pl.batch }

// BeginBatch clears the reservation ledger; schedulers call it at the top
// of every Schedule invocation.
func (pl *Pipeline) BeginBatch() {
	pl.led.Begin()
	if len(pl.batch) > 0 {
		pl.batch = pl.batch[:0]
	}
}

// Reserve records an externally-made placement decision (Medea's ILP) in
// the ledger so subsequent Selects account for it.
func (pl *Pipeline) Reserve(id int, p *trace.Pod) { pl.led.Add(id, p) }

// Candidates returns the pod's affinity-and-lifecycle-filtered candidate
// universe from the index. The slice is live; callers must not modify it.
func (pl *Pipeline) Candidates(p *trace.Pod) []int { return pl.idx.Candidates(p) }

// RestrictTo limits the candidate universe to a partition of the cluster;
// affinity groups compose (partition ∩ group).
func (pl *Pipeline) RestrictTo(ids []int) { pl.idx.RestrictTo(ids) }

// Select drives one pod through the staged pipeline: PreFilter, candidate
// lookup, optional sampling, the filter/score scan (bucket-pruned when the
// spec's filters expose headroom bounds and no sampler is set), and
// reservation of the winner. When nothing admits the pod it classifies
// the blocking resource, and for LSR pods with Preempt set it proposes BE
// preemption on the fullest candidate (§3.1.3).
//
// Ties break to the lowest node ID, which makes the bucket-order scan
// equivalent to a first-wins scan over the ascending-ID candidate list.
func (pl *Pipeline) Select(p *trace.Pod, sp *Spec) Decision {
	st := pl.stats
	nd := st.decisions.Add(1)
	var dt *obs.DecisionTrace
	if pl.rec != nil {
		dt = pl.rec.Start(p.ID, p.AppID, p.SLO.String())
	}
	// timed gates the stage-latency clock reads (see SetSpanSampling);
	// traced decisions are always timed so their spans stay populated.
	timed := dt != nil || st.spanEvery <= 1 || nd%st.spanEvery == 0
	if timed {
		st.timedDecisions.Add(1)
	}

	if len(sp.Pre) > 0 {
		t0 := time.Now()
		for _, pre := range sp.Pre {
			if reason, ok := pre.PreFilter(p); !ok {
				st.prefilterRejects.Add(1)
				st.observe(StagePreFilter, time.Since(t0))
				if dt != nil {
					dt.SpanFrom(StagePreFilter.String(), t0, time.Since(t0))
					dt.Reject(StagePreFilter.String(), reason.String(), 1)
				}
				return pl.finish(dt, Decision{Pod: p, NodeID: -1, Reason: reason})
			}
		}
		st.observe(StagePreFilter, time.Since(t0))
		if dt != nil {
			dt.SpanFrom(StagePreFilter.String(), t0, time.Since(t0))
		}
	}

	var t1, t1e time.Time
	if timed {
		t1 = time.Now()
	}
	cands := pl.idx.Candidates(p)
	st.candidateNodes.Add(int64(len(cands)))
	if timed {
		// t1e doubles as the scan stage's start on the unsampled path —
		// one clock read fewer per decision on the engine's hot path.
		t1e = time.Now()
		st.observe(StageCandidates, t1e.Sub(t1))
	}
	if dt != nil {
		dt.SpanFrom(StageCandidates.String(), t1, t1e.Sub(t1))
		dt.Candidates = len(cands)
		// O(nodes) walk, but only on the sampled path: name the hosts the
		// index excluded because they are not Up.
		if down, _ := pl.c.DownStats(); down > 0 {
			dt.Reject(StageCandidates.String(), "node not Up", down)
		}
	}
	if len(cands) == 0 {
		if dt != nil {
			dt.Reject(StageCandidates.String(), "no candidates", 1)
		}
		return pl.finish(dt, Decision{Pod: p, NodeID: -1, Reason: ReasonOther})
	}

	var d Decision
	var cpuBlock, memBlock int
	if sp.Sampler != nil {
		t2 := time.Now()
		scanSet := sp.Sampler.Sample(p, cands)
		st.sampledNodes.Add(int64(len(scanSet)))
		st.observe(StageSample, time.Since(t2))
		if dt != nil {
			dt.SpanFrom(StageSample.String(), t2, time.Since(t2))
			dt.Sampled = len(scanSet)
		}

		t3 := time.Now()
		d, cpuBlock, memBlock = pl.scanList(p, scanSet, sp, dt)
		if d.NodeID < 0 && sp.FullScanFallback && len(scanSet) < len(cands) {
			// Second chance: the sample missed every admissible host.
			d, cpuBlock, memBlock = pl.scanList(p, cands, sp, dt)
		}
		st.observe(StageScan, time.Since(t3))
		if dt != nil {
			dt.SpanFrom(StageScan.String(), t3, time.Since(t3))
		}
	} else {
		st.sampledNodes.Add(int64(len(cands)))
		t3 := t1e
		if need, ok := sp.minHeadroom(p, pl.idx.minCap, pl.idx.maxCap); ok {
			d, cpuBlock, memBlock = pl.scanIndexed(p, need, sp, dt)
		} else {
			d, cpuBlock, memBlock = pl.scanList(p, cands, sp, dt)
		}
		if timed {
			st.observe(StageScan, time.Since(t3))
		}
		if dt != nil {
			dt.Sampled = len(cands)
			dt.SpanFrom(StageScan.String(), t3, time.Since(t3))
		}
	}

	if d.NodeID >= 0 {
		pl.led.Add(d.NodeID, p)
		st.placed.Add(1)
		return pl.finish(dt, d)
	}
	d.Reason = Classify(cpuBlock, memBlock)
	if sp.Preempt && p.SLO == trace.SLOLSR {
		t4 := time.Now()
		id, ok := pl.PreemptTarget(p, cands)
		st.observe(StagePreempt, time.Since(t4))
		if dt != nil {
			dt.SpanFrom(StagePreempt.String(), t4, time.Since(t4))
		}
		if ok {
			pl.led.Add(id, p)
			st.placed.Add(1)
			st.preempts.Add(1)
			return pl.finish(dt, Decision{Pod: p, NodeID: id, NeedPreempt: true, Reason: ReasonNone})
		}
	}
	return pl.finish(dt, d)
}

// finish stamps the decision's outcome on its trace (when sampled),
// commits it to the recorder, and remembers it for batch-level
// amendments. The nil fast path keeps the untraced decision free.
func (pl *Pipeline) finish(dt *obs.DecisionTrace, d Decision) Decision {
	if dt == nil {
		return d
	}
	if d.NodeID >= 0 {
		if d.NeedPreempt {
			dt.Outcome = "preempt-placed"
		} else {
			dt.Outcome = "placed"
		}
		dt.Node = d.NodeID
		dt.Score = d.Score
	} else {
		dt.Outcome = "failed"
		dt.Reason = d.Reason.String()
	}
	pl.rec.Commit(dt)
	pl.batch = append(pl.batch, dt)
	return d
}

// SelectFrom runs the scan over an explicit candidate list instead of the
// index, preserving the caller's iteration order for tie-breaking
// (first-wins on equal scores) — the compatibility path behind
// sched.Base.Greedy. No sampling or bucket pruning applies.
func (pl *Pipeline) SelectFrom(p *trace.Pod, cands []int, sp *Spec) Decision {
	st := pl.stats
	st.decisions.Add(1)
	st.candidateNodes.Add(int64(len(cands)))
	var dt *obs.DecisionTrace
	if pl.rec != nil {
		dt = pl.rec.Start(p.ID, p.AppID, p.SLO.String())
		if dt != nil {
			dt.Candidates = len(cands)
			dt.Sampled = len(cands)
		}
	}
	best := Decision{Pod: p, NodeID: -1, Reason: ReasonOther}
	if len(cands) == 0 {
		if dt != nil {
			dt.Reject(StageCandidates.String(), "no candidates", 1)
		}
		return pl.finish(dt, best)
	}
	st.sampledNodes.Add(int64(len(cands)))

	t0 := time.Now()
	found := false
	cpuBlock, memBlock := 0, 0
	scored := 0
	for _, id := range cands {
		n := pl.c.Node(id)
		s, cpuOK, memOK := sp.evaluate(n, p, pl.led.Reserved(id))
		if cpuOK && memOK {
			scored++
			if dt != nil {
				dt.NoteScore(id, s)
			}
			if !found || s > best.Score {
				best.NodeID = id
				best.Score = s
				best.Reason = ReasonNone
				found = true
			}
			continue
		}
		if !cpuOK {
			cpuBlock++
		}
		if !memOK {
			memBlock++
		}
	}
	st.visitedNodes.Add(int64(len(cands)))
	st.scoredNodes.Add(int64(scored))
	st.observe(StageScan, time.Since(t0))
	if dt != nil {
		dt.Visited += len(cands)
		dt.Scored += scored
		dt.SpanFrom(StageScan.String(), t0, time.Since(t0))
		cpuLbl, memLbl := rejectLabels(sp)
		dt.Reject(StageScan.String(), cpuLbl, cpuBlock)
		dt.Reject(StageScan.String(), memLbl, memBlock)
	}

	if found {
		pl.led.Add(best.NodeID, p)
		st.placed.Add(1)
		return pl.finish(dt, best)
	}
	best.Reason = Classify(cpuBlock, memBlock)
	if sp.Preempt && p.SLO == trace.SLOLSR {
		t1 := time.Now()
		id, ok := pl.PreemptTarget(p, cands)
		st.observe(StagePreempt, time.Since(t1))
		if dt != nil {
			dt.SpanFrom(StagePreempt.String(), t1, time.Since(t1))
		}
		if ok {
			pl.led.Add(id, p)
			st.placed.Add(1)
			st.preempts.Add(1)
			return pl.finish(dt, Decision{Pod: p, NodeID: id, NeedPreempt: true, Reason: ReasonNone})
		}
	}
	return pl.finish(dt, best)
}

// Explain re-runs the spec's filters over the pod's candidates and
// classifies the blocking dimension without selecting or reserving — for
// schedulers (Medea's ILP tier) that decide placement elsewhere but share
// the reason taxonomy.
func (pl *Pipeline) Explain(p *trace.Pod, sp *Spec) Reason {
	cpuBlock, memBlock := 0, 0
	count := func(id int) {
		n := pl.c.Node(id)
		_, cpuOK, memOK := sp.evaluate(n, p, pl.led.Reserved(id))
		if !cpuOK {
			cpuBlock++
		}
		if !memOK {
			memBlock++
		}
	}
	if need, ok := sp.minHeadroom(p, pl.idx.minCap, pl.idx.maxCap); ok {
		pc, pm, _ := pl.idx.Scan(p, need, count)
		cpuBlock += pc
		memBlock += pm
	} else {
		for _, id := range pl.idx.Candidates(p) {
			count(id)
		}
	}
	return Classify(cpuBlock, memBlock)
}

// PreemptTarget picks the candidate with the most evictable BE request
// mass that would fit the LSR pod after eviction — the LSR admission
// fallback (§3.1.3).
func (pl *Pipeline) PreemptTarget(p *trace.Pod, cands []int) (int, bool) {
	bestID, bestBE := -1, 0.0
	for _, id := range cands {
		n := pl.c.Node(id)
		var beReq trace.Resources
		for _, ps := range n.Pods() {
			if ps.Pod.SLO == trace.SLOBE {
				beReq = beReq.Add(ps.Pod.Request)
			}
		}
		free := n.Capacity().Sub(n.ReqSum()).Sub(pl.led.Reserved(id)).Add(beReq)
		if p.Request.FitsIn(free) && beReq.CPU > bestBE {
			bestBE = beReq.CPU
			bestID = id
		}
	}
	return bestID, bestID >= 0
}

// scanIndexed runs the filter/score scan through the headroom bucket grid,
// skipping buckets the spec's bounds prove infeasible. Pruned nodes join
// the per-dimension block counts (their bucket bound proves the failing
// dimension), so Reason classification stays meaningful under pruning.
func (pl *Pipeline) scanIndexed(p *trace.Pod, need trace.Resources, sp *Spec, dt *obs.DecisionTrace) (Decision, int, int) {
	st := pl.stats
	best := Decision{Pod: p, NodeID: -1, Reason: ReasonOther}
	found := false
	cpuBlock, memBlock := 0, 0
	visited, scored := 0, 0
	pc, pm, pruned := pl.idx.ScanRuns(p, need, func(ids []int) {
		visited += len(ids)
		for _, id := range ids {
			n := pl.c.Node(id)
			s, cpuOK, memOK := sp.evaluate(n, p, pl.led.Reserved(id))
			if cpuOK && memOK {
				scored++
				if dt != nil {
					dt.NoteScore(id, s)
				}
				if !found || s > best.Score || (s == best.Score && id < best.NodeID) {
					best.NodeID = id
					best.Score = s
					best.Reason = ReasonNone
					found = true
				}
				continue
			}
			if !cpuOK {
				cpuBlock++
			}
			if !memOK {
				memBlock++
			}
		}
	})
	st.visitedNodes.Add(int64(visited))
	st.scoredNodes.Add(int64(scored))
	st.prunedNodes.Add(int64(pruned))
	st.prunedCPU.Add(int64(pc))
	st.prunedMem.Add(int64(pm))
	if dt != nil {
		dt.Visited += visited
		dt.Scored += scored
		dt.Pruned += pruned
		dt.Reject(StageScan.String(), "no headroom bucket (cpu)", pc)
		dt.Reject(StageScan.String(), "no headroom bucket (mem)", pm)
		cpuLbl, memLbl := rejectLabels(sp)
		dt.Reject(StageScan.String(), cpuLbl, cpuBlock)
		dt.Reject(StageScan.String(), memLbl, memBlock)
	}
	return best, cpuBlock + pc, memBlock + pm
}

// scanList evaluates an explicit candidate list (a PPO sample, or a
// universe with no usable headroom bounds) with the lowest-ID tie-break,
// in parallel when the spec asks for it and the list is large enough.
func (pl *Pipeline) scanList(p *trace.Pod, ids []int, sp *Spec, dt *obs.DecisionTrace) (Decision, int, int) {
	if sp.ScanWorkers > 1 && len(ids) >= parallelScanMin {
		return pl.scanParallel(p, ids, sp, dt)
	}
	st := pl.stats
	best := Decision{Pod: p, NodeID: -1, Reason: ReasonOther}
	found := false
	cpuBlock, memBlock := 0, 0
	scored := 0
	for _, id := range ids {
		n := pl.c.Node(id)
		s, cpuOK, memOK := sp.evaluate(n, p, pl.led.Reserved(id))
		if cpuOK && memOK {
			scored++
			if dt != nil {
				dt.NoteScore(id, s)
			}
			if !found || s > best.Score || (s == best.Score && id < best.NodeID) {
				best.NodeID = id
				best.Score = s
				best.Reason = ReasonNone
				found = true
			}
			continue
		}
		if !cpuOK {
			cpuBlock++
		}
		if !memOK {
			memBlock++
		}
	}
	st.visitedNodes.Add(int64(len(ids)))
	st.scoredNodes.Add(int64(scored))
	if dt != nil {
		dt.Visited += len(ids)
		dt.Scored += scored
		cpuLbl, memLbl := rejectLabels(sp)
		dt.Reject(StageScan.String(), cpuLbl, cpuBlock)
		dt.Reject(StageScan.String(), memLbl, memBlock)
	}
	return best, cpuBlock, memBlock
}

// scanParallel fans the per-node evaluation across ScanWorkers goroutines
// in contiguous chunks, then reduces serially in list order — bitwise
// identical results to the serial scan, whatever the interleaving.
func (pl *Pipeline) scanParallel(p *trace.Pod, ids []int, sp *Spec, dt *obs.DecisionTrace) (Decision, int, int) {
	if cap(pl.scanBuf) < len(ids) {
		pl.scanBuf = make([]scanResult, len(ids))
	}
	results := pl.scanBuf[:len(ids)]
	eval := func(k int) {
		id := ids[k]
		n := pl.c.Node(id)
		score, cpuOK, memOK := sp.evaluate(n, p, pl.led.Reserved(id))
		results[k] = scanResult{id: id, ok: cpuOK && memOK, cpuNo: !cpuOK, memNo: !memOK, score: score}
	}
	var wg sync.WaitGroup
	workers := sp.ScanWorkers
	chunk := (len(ids) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(ids) {
			break
		}
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for k := lo; k < hi; k++ {
				eval(k)
			}
		}(lo, hi)
	}
	wg.Wait()

	st := pl.stats
	best := Decision{Pod: p, NodeID: -1, Reason: ReasonOther}
	found := false
	cpuBlock, memBlock := 0, 0
	scored := 0
	for _, r := range results {
		if r.ok {
			scored++
			if dt != nil {
				// Trace capture stays in the serial reduction: the trace is
				// not safe for concurrent writes from the eval goroutines.
				dt.NoteScore(r.id, r.score)
			}
			if !found || r.score > best.Score || (r.score == best.Score && r.id < best.NodeID) {
				best.NodeID = r.id
				best.Score = r.score
				best.Reason = ReasonNone
				found = true
			}
			continue
		}
		if r.cpuNo {
			cpuBlock++
		}
		if r.memNo {
			memBlock++
		}
	}
	st.visitedNodes.Add(int64(len(ids)))
	st.scoredNodes.Add(int64(scored))
	if dt != nil {
		dt.Visited += len(ids)
		dt.Scored += scored
		cpuLbl, memLbl := rejectLabels(sp)
		dt.Reject(StageScan.String(), cpuLbl, cpuBlock)
		dt.Reject(StageScan.String(), memLbl, memBlock)
	}
	return best, cpuBlock, memBlock
}

// rejectLabels names the scan-stage per-dimension rejections for a traced
// decision: the Eval plugin's own labels when it provides them, the
// generic request-fit wording otherwise.
func rejectLabels(sp *Spec) (cpu, mem string) {
	if rl, ok := sp.Eval.(RejectLabeler); ok {
		return rl.RejectLabels()
	}
	return "insufficient cpu", "insufficient mem"
}
