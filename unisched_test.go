package unisched_test

import (
	"errors"
	"testing"
	"time"

	"unisched"
)

// TestFacadeEndToEnd drives the whole public API the way the README's
// quickstart does: generate, profile, schedule with Optum, inspect.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := unisched.SmallWorkload()
	cfg.NumNodes = 16
	cfg.Horizon = 2 * 3600
	w, err := unisched.GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Pods) == 0 || len(w.Nodes) != 16 {
		t.Fatalf("workload shape: %d pods %d nodes", len(w.Pods), len(w.Nodes))
	}

	// Profile under the baseline.
	col := unisched.NewCollector(1)
	warm := unisched.NewCluster(w)
	base := unisched.Simulate(w, warm, unisched.NewAlibabaScheduler(warm, 1),
		unisched.SimConfig{Collector: col})
	if base.Placed == 0 {
		t.Fatal("baseline placed nothing")
	}
	prof, err := unisched.TrainProfiles(col)
	if err != nil {
		t.Fatal(err)
	}
	if prof.ERO.Pairs() == 0 {
		t.Fatal("no profiles learned")
	}

	// Run Optum.
	c := unisched.NewCluster(w)
	o := unisched.NewOptum(c, prof, unisched.DefaultOptumOptions(), 1)
	res := unisched.Simulate(w, c, o, unisched.SimConfig{})
	if res.Placed == 0 {
		t.Fatal("Optum placed nothing")
	}
	if res.Scheduler != "Optum" {
		t.Errorf("scheduler name %q", res.Scheduler)
	}
}

// TestFacadeBaselines constructs every baseline through the facade.
func TestFacadeBaselines(t *testing.T) {
	cfg := unisched.SmallWorkload()
	cfg.NumNodes = 8
	cfg.Horizon = 1800
	w := unisched.MustGenerateWorkload(cfg)
	builders := map[string]func(*unisched.Cluster, int64) unisched.Scheduler{
		"Alibaba":   unisched.NewAlibabaScheduler,
		"Borg-like": unisched.NewBorgScheduler,
		"N-sigma":   unisched.NewNSigmaScheduler,
		"RC-like":   unisched.NewRCScheduler,
		"Medea":     unisched.NewMedeaScheduler,
	}
	for want, mk := range builders {
		c := unisched.NewCluster(w)
		s := mk(c, 1)
		if s.Name() != want {
			t.Errorf("Name = %q, want %q", s.Name(), want)
		}
		res := unisched.Simulate(w, c, s, unisched.SimConfig{})
		if res.Placed == 0 {
			t.Errorf("%s placed nothing", want)
		}
	}
}

// TestFacadeWorkloadIO exercises save/load through the facade.
func TestFacadeWorkloadIO(t *testing.T) {
	cfg := unisched.SmallWorkload()
	cfg.NumNodes = 4
	cfg.Horizon = 900
	w := unisched.MustGenerateWorkload(cfg)
	path := t.TempDir() + "/w.json"
	if err := unisched.SaveWorkload(path, w); err != nil {
		t.Fatal(err)
	}
	got, err := unisched.LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pods) != len(w.Pods) {
		t.Fatal("round trip changed pod count")
	}
}

// TestFacadeDurableEngine drives the durable-engine surface through the
// facade: open, run, stop, reopen, and check the recovered hash.
func TestFacadeDurableEngine(t *testing.T) {
	cfg := unisched.SmallWorkload()
	cfg.NumNodes = 8
	cfg.Horizon = 1800
	w := unisched.MustGenerateWorkload(cfg)
	dir := t.TempDir()

	ecfg := unisched.EngineConfig{
		Workers: 2, Shards: 4, Horizon: w.Horizon,
		DataDir: dir, CheckpointEvery: 5, FsyncEvery: time.Millisecond,
	}
	factory := func(c *unisched.Cluster, worker int, seed int64) unisched.Scheduler {
		return unisched.NewAlibabaScheduler(c, seed)
	}
	c := unisched.NewCluster(w)
	e, rs, err := unisched.OpenDurableEngine(c, factory, ecfg, w.LinkPod)
	if err != nil {
		t.Fatal(err)
	}
	if rs.StateHash == "" {
		t.Fatal("no state hash on a fresh open")
	}
	e.Start()
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			t.Fatalf("submit %d: %v", p.ID, err)
		}
	}
	e.Drain(time.Minute)
	e.Stop()
	final := e.StateHash()
	sn := e.Snapshot()
	if sn.Journal == nil || sn.Journal.Records == 0 {
		t.Fatal("durable engine journaled nothing")
	}

	c2 := unisched.NewCluster(w)
	e2, rs2, err := unisched.OpenDurableEngine(c2, factory, ecfg, w.LinkPod)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Stop()
	if rs2.StateHash != final {
		t.Fatalf("recovered hash %s != final %s", rs2.StateHash, final)
	}
	for _, p := range w.Pods {
		if err := e2.Submit(p); err != unisched.ErrDuplicatePod {
			t.Fatalf("resubmit %d after recovery: %v, want duplicate", p.ID, err)
		}
	}
}

// TestFacadeMultiTenantEngine drives the quota surface through the facade:
// build a tree, run a two-tenant engine, shed over-max, inspect the tree.
func TestFacadeMultiTenantEngine(t *testing.T) {
	cfg := unisched.SmallWorkload()
	cfg.NumNodes = 8
	cfg.Horizon = 1800
	w := unisched.MustGenerateWorkload(cfg)

	qt, err := unisched.NewQuotaTree(unisched.QuotaConfig{
		DefaultTenant: "shared",
		Tenants: []unisched.TenantConfig{
			{Name: "shared", Guaranteed: unisched.Resources{CPU: 4, Mem: 16}},
			{Name: "tiny", Guaranteed: unisched.Resources{CPU: 0.1, Mem: 0.1},
				Max: unisched.Resources{CPU: 0.1, Mem: 0.1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	factory := func(c *unisched.Cluster, worker int, seed int64) unisched.Scheduler {
		return unisched.NewAlibabaScheduler(c, seed)
	}
	c := unisched.NewCluster(w)
	e := unisched.NewEngine(c, factory, unisched.EngineConfig{
		Workers: 2, Horizon: w.Horizon, BlockOnFull: true, Quota: qt,
	})
	e.Start()
	overMax := 0
	for _, p := range w.Pods {
		if i := p.ID % 8; i == 0 {
			p.Tenant = "tiny" // most of these shed on the 0.1-CPU max
		}
		switch err := e.Submit(p); {
		case err == nil:
		case errors.Is(err, unisched.ErrQuotaOverMax):
			overMax++
		default:
			t.Fatalf("submit %d: %v", p.ID, err)
		}
	}
	e.Drain(time.Minute)
	e.Stop()
	if overMax == 0 {
		t.Fatal("nothing shed on the tiny tenant's max")
	}
	sn := e.Snapshot()
	if sn.Lost() != 0 || sn.Quota == nil || int64(overMax) != sn.QuotaShed {
		t.Fatalf("quota accounting: lost %d, shed %d vs %d", sn.Lost(), sn.QuotaShed, overMax)
	}
	var qs unisched.QuotaTreeSnapshot
	if qs, err = e.QuotaSnapshot(); err != nil || len(qs.Root.Children) != 2 {
		t.Fatalf("quota snapshot: %v (%d tenants)", err, len(qs.Root.Children))
	}
}
