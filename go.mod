module unisched

go 1.22
