// Benchmarks regenerating every figure of the paper's evaluation section,
// plus micro-benchmarks for the scheduling hot paths and the ablations
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks execute the full experiment per iteration and report
// headline metrics via b.ReportMetric, so one -bench run reproduces the
// paper's result set end to end.
package unisched_test

import (
	"sync"
	"testing"

	"unisched"
	"unisched/internal/analysis"
	"unisched/internal/core"
	"unisched/internal/experiments"
	"unisched/internal/stats"
	"unisched/internal/trace"
)

// benchSetup is shared across figure benchmarks: one baseline replay and
// one profile-training pass.
var (
	setupOnce sync.Once
	benchEnv  *experiments.Setup
)

func getSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	setupOnce.Do(func() {
		s, err := experiments.NewSetup(experiments.QuickScale())
		if err != nil {
			panic(err)
		}
		benchEnv = s
	})
	return benchEnv
}

// BenchmarkFig02SLODistribution regenerates the pod SLO mix of Fig. 2(b).
func BenchmarkFig02SLODistribution(b *testing.B) {
	s := getSetup(b)
	var beFrac float64
	for i := 0; i < b.N; i++ {
		beFrac = analysis.SLODistribution(s.Workload)[trace.SLOBE]
	}
	b.ReportMetric(beFrac, "BE-fraction")
}

// BenchmarkFig03Workloads regenerates the submission and QPS series of
// Fig. 3.
func BenchmarkFig03Workloads(b *testing.B) {
	s := getSetup(b)
	var peak float64
	for i := 0; i < b.N; i++ {
		be, _ := analysis.SubmissionSeries(s.Workload, 600)
		peak = stats.Max(be.Values)
	}
	b.ReportMetric(peak, "peak-BE-per-10min")
}

// BenchmarkFig04to10Characterize replays the production-shaped study behind
// Figures 4-10 (utilization, over-commitment, waits, ranks).
func BenchmarkFig04to10Characterize(b *testing.B) {
	var meanUtil float64
	for i := 0; i < b.N; i++ {
		sc := analysis.DefaultStudy()
		sc.Horizon = 6 * 3600 // a slice of the day per iteration
		_, res, _ := analysis.RunStudy(sc)
		meanUtil = stats.Mean(res.CPUUtilAvg)
	}
	b.ReportMetric(meanUtil, "mean-CPU-util")
}

// BenchmarkFig11Predictors regenerates the predictor error comparison.
func BenchmarkFig11Predictors(b *testing.B) {
	s := getSetup(b)
	var borgOver, optumOver float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig11PredictorErrors(s, 8)
		for _, r := range rows {
			switch r.Name {
			case "Borg default":
				borgOver = r.Over.Quantile(0.5)
			case "Optum Predictor":
				optumOver = r.Over.Quantile(0.5)
			}
		}
	}
	b.ReportMetric(borgOver, "borg-overest-p50-%")
	b.ReportMetric(optumOver, "optum-overest-p50-%")
}

// BenchmarkFig12to16Correlations regenerates the CoV and correlation
// studies of Figures 12-16 from the shared study run.
func BenchmarkFig12to16Correlations(b *testing.B) {
	sc := analysis.DefaultStudy()
	sc.Horizon = 6 * 3600
	w, res, rec := analysis.RunStudy(sc)
	b.ResetTimer()
	var psiCorr float64
	for i := 0; i < b.N; i++ {
		analysis.CoVDistribution(rec, res, w, 2)
		analysis.RTCorrelations(rec)
		rows := analysis.PSIUtilCorrelations(rec, true)
		for _, r := range rows {
			if r.Metric == "CPUPSI60" {
				psiCorr = r.P50
			}
		}
	}
	b.ReportMetric(psiCorr, "PSI-hostutil-corr-p50")
}

// BenchmarkFig18Profilers regenerates the learning-model accuracy study.
func BenchmarkFig18Profilers(b *testing.B) {
	s := getSetup(b)
	var rfMAPE float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig18ProfilerAccuracy(s)
		if err != nil {
			b.Fatal(err)
		}
		rfMAPE = rows[0].LS.Quantile(0.5)
	}
	b.ReportMetric(rfMAPE, "RF-LS-MAPE-p50")
}

// BenchmarkFig19Fig20Evaluation regenerates the end-to-end comparison: one
// full replay per scheduler per iteration.
func BenchmarkFig19Fig20Evaluation(b *testing.B) {
	s := getSetup(b)
	var optumImprove, optumPSIViol float64
	for i := 0; i < b.N; i++ {
		for _, ev := range experiments.RunEvaluation(s, nil) {
			if ev.Name == experiments.NameOptum {
				optumImprove = ev.GoodputImprovement
				optumPSIViol = ev.PSIViolationRate
			}
		}
	}
	b.ReportMetric(optumImprove, "optum-goodput-improve-pp")
	b.ReportMetric(optumPSIViol, "optum-PSI-violation")
}

// BenchmarkFig21Sensitivity regenerates the omega sweep (4 replays/iter).
func BenchmarkFig21Sensitivity(b *testing.B) {
	s := getSetup(b)
	var spread float64
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig21Sensitivity(s, []float64{0.1, 0.9})
		lo, hi := pts[0].MeanImprovement, pts[0].MeanImprovement
		for _, p := range pts {
			if p.MeanImprovement < lo {
				lo = p.MeanImprovement
			}
			if p.MeanImprovement > hi {
				hi = p.MeanImprovement
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "improvement-spread-pp")
}

// BenchmarkFig22Overhead measures real per-pod scheduling latency against
// pre-loaded clusters — the Fig. 22 measurement itself.
func BenchmarkFig22Overhead(b *testing.B) {
	s := getSetup(b)
	var optumMs float64
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig22Overhead(s, []int{1000}, 20)
		for _, p := range pts {
			if p.Scheduler == experiments.NameOptum {
				optumMs = p.MeanMs
			}
		}
	}
	b.ReportMetric(optumMs, "optum-ms-per-pod-1k-nodes")
}

// --- Ablations ---

func BenchmarkAblationEROvsP99(b *testing.B) {
	s := getSetup(b)
	var under float64
	for i := 0; i < b.N; i++ {
		ab := experiments.RunAblationERO(s)
		under = ab.RCUnderRate - ab.OptumUnderRate
	}
	b.ReportMetric(under, "RC-minus-Optum-underrate")
}

func BenchmarkAblationBucketize(b *testing.B) {
	s := getSetup(b)
	var d float64
	for i := 0; i < b.N; i++ {
		ab, err := experiments.RunAblationBucketize(s)
		if err != nil {
			b.Fatal(err)
		}
		d = ab.BucketizedLSMAPE - ab.RawLSMAPE
	}
	b.ReportMetric(d, "bucketized-minus-raw-MAPE")
}

func BenchmarkAblationPPOSampling(b *testing.B) {
	s := getSetup(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		ab := experiments.RunAblationPPO(s)
		if ab.SampledMeanMs > 0 {
			speedup = ab.FullMeanMs / ab.SampledMeanMs
		}
	}
	b.ReportMetric(speedup, "fullscan-vs-sampled-latency-x")
}

func BenchmarkAblationScoreForm(b *testing.B) {
	s := getSetup(b)
	var memGain float64
	for i := 0; i < b.N; i++ {
		ab := experiments.RunAblationScoreForm(s)
		memGain = ab.JointMemBusy - ab.CPUOnlyMemBusy
	}
	b.ReportMetric(memGain, "joint-mem-util-gain")
}

// --- Micro-benchmarks for the scheduling hot paths ---

// BenchmarkOptumDecision measures one Optum placement decision against a
// warm 200-node cluster.
func BenchmarkOptumDecision(b *testing.B) {
	s := getSetup(b)
	w := s.Workload
	c := unisched.NewCluster(w)
	o := core.New(c, s.Profiles, core.DefaultOptions(), 7)
	// Warm: place a slice of pods and tick.
	for i, p := range w.Pods {
		if i >= 200 {
			break
		}
		if _, err := c.Place(p, i%len(w.Nodes), 0); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		c.Tick(int64(i)*30, 30)
	}
	probe := w.Pods[len(w.Pods)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Schedule([]*trace.Pod{probe}, 120)
	}
}

// BenchmarkBaselineDecision measures one Alibaba-like placement decision.
func BenchmarkBaselineDecision(b *testing.B) {
	s := getSetup(b)
	w := s.Workload
	c := unisched.NewCluster(w)
	sc := unisched.NewAlibabaScheduler(c, 7)
	for i, p := range w.Pods {
		if i >= 200 {
			break
		}
		if _, err := c.Place(p, i%len(w.Nodes), 0); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		c.Tick(int64(i)*30, 30)
	}
	probe := w.Pods[len(w.Pods)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Schedule([]*trace.Pod{probe}, 120)
	}
}

// BenchmarkClusterTick measures one 30-second physics tick of a loaded
// cluster — the simulator's inner loop.
func BenchmarkClusterTick(b *testing.B) {
	s := getSetup(b)
	w := s.Workload
	c := unisched.NewCluster(w)
	for i, p := range w.Pods {
		if i >= 400 {
			break
		}
		c.Place(p, i%len(w.Nodes), 0) //nolint:errcheck
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick(int64(i)*30, 30)
	}
}

// BenchmarkWorkloadGeneration measures synthetic trace generation.
func BenchmarkWorkloadGeneration(b *testing.B) {
	cfg := trace.SmallConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := trace.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfilerTraining measures one full interference-profile
// training pass over the collected samples.
func BenchmarkProfilerTraining(b *testing.B) {
	s := getSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Collector.TrainInterference(nil, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTriples quantifies the §4.2.2 triple-wise extension:
// prediction tightening vs pairwise, and the profiling blow-up.
func BenchmarkAblationTriples(b *testing.B) {
	s := getSetup(b)
	var tighter float64
	for i := 0; i < b.N; i++ {
		ab := experiments.RunAblationTriples(s)
		tighter = ab.PairMeanOver - ab.TripleMeanOver
	}
	b.ReportMetric(tighter, "over-estimation-reduction-pp")
}
