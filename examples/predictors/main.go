// Predictors: compare the industry host-usage predictors of §3.2.2 —
// Borg default, Resource Central, N-sigma, Max — against Optum's pairwise
// ERO predictor on identical hosts (the Fig. 11 experiment).
//
//	go run ./examples/predictors
package main

import (
	"fmt"
	"log"
	"os"

	"unisched"
	"unisched/internal/experiments"
	"unisched/internal/texttab"
)

func main() {
	scale := unisched.QuickEvaluation()
	scale.Nodes = 24
	fmt.Println("building evaluation setup (baseline replay + profiling)...")
	setup, err := unisched.NewEvaluation(scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("replaying with five predictors attached...")
	rows := experiments.Fig11PredictorErrors(setup, 4)

	fmt.Println("\nhost CPU usage prediction error, percent (Fig. 11):")
	tb := texttab.New("predictor", "mean |err|", "over-est p50", "over-est p99",
		"under-est p50", "P(under > 10%)")
	for _, r := range rows {
		tb.Row(r.Name, r.MeanAbs, r.Over.Quantile(0.5), r.Over.Quantile(0.99),
			r.Under.Quantile(0.5), r.UnderFrac10)
	}
	tb.Render(os.Stdout)

	fmt.Println("\nreading the table:")
	fmt.Println("  - Borg default and Max over-estimate severely (requests >> usage)")
	fmt.Println("  - Resource Central tracks recent usage tightly but under-estimates")
	fmt.Println("    when load rises — the risky direction")
	fmt.Println("  - Optum's pairwise ERO predictor is a peak estimator: it rarely")
	fmt.Println("    under-estimates, the property over-commitment safety needs")
}
