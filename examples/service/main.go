// Service: drive the online scheduling engine in-process — the same
// event-driven pipeline cmd/unischedd serves over HTTP. Pods stream
// through a bounded per-SLO priority queue into four parallel scheduler
// workers racing over the sharded cluster store; a virtual-clock event
// loop advances usage, BE completions and lifetime expiries. The example
// then replays the identical workload through the batch simulator and
// compares the two Results side by side.
//
//	go run ./examples/service
package main

import (
	"fmt"
	"time"

	"unisched"
)

func main() {
	// 1. A reproducible synthetic workload and an empty cluster.
	cfg := unisched.SmallWorkload()
	w := unisched.MustGenerateWorkload(cfg)
	fmt.Printf("workload: %d nodes, %d apps, %d pods, %dh horizon\n\n",
		len(w.Nodes), len(w.Apps), len(w.Pods), w.Horizon/3600)

	// 2. The engine: four parallel workers, each owning a disjoint
	//    partition of the cluster, over a sharded state store. Fast mode
	//    (no TickWall) advances the virtual clock as quickly as the
	//    workers drain the queue — ideal for in-process use; cmd/unischedd
	//    sets TickWall to pace it against the wall clock instead.
	c := unisched.NewCluster(w)
	e := unisched.NewEngine(c,
		func(cc *unisched.Cluster, worker int, seed int64) unisched.Scheduler {
			return unisched.NewAlibabaScheduler(cc, seed)
		},
		unisched.EngineConfig{
			Workers:        4,
			Shards:         8,
			QueueCap:       len(w.Pods),
			Horizon:        w.Horizon,
			PartitionNodes: true,
			Seed:           1,
			// Record every 16th placement decision; cmd/unischedd serves
			// the same ring at /v1/debug/decisions.
			TraceEvery: 16,
		})
	e.Start()

	// 3. Stream every pod in. Submissions are admitted through per-SLO
	//    priority lanes; with a full queue they would block or shed.
	start := time.Now()
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			fmt.Println("submit:", err)
			return
		}
	}
	if !e.Drain(5 * time.Minute) {
		fmt.Println("engine did not settle")
		return
	}
	e.Stop()

	sn := e.Snapshot()
	fmt.Printf("engine:   placed %d of %d in %v (%.0f placements/s)\n",
		sn.Placed, sn.Submitted, time.Since(start).Round(time.Millisecond),
		float64(sn.Placed)/time.Since(start).Seconds())
	fmt.Printf("          completed %d BE, expired %d, pending %d, lost %d\n",
		sn.Completed, sn.Expired, sn.Pending, sn.Lost())
	fmt.Printf("          commit conflicts %d, decision p99 %.3fms\n\n",
		sn.CommitConflicts, sn.DecisionP99Ms)

	// 4. The same workload through the batch simulator: the engine's
	//    utilization series is directly comparable to the sim Result.
	c2 := unisched.NewCluster(w)
	res := unisched.Simulate(w, c2, unisched.NewAlibabaScheduler(c2, 1), unisched.SimConfig{})
	fmt.Printf("sim.Run:  placed %d, pending %d\n\n", res.Placed, res.Pending)

	eng := e.Series()
	fmt.Println("mean CPU utilization over the horizon:")
	fmt.Printf("  engine %.3f   sim %.3f\n", mean(eng.CPUUtilAvg), mean(res.CPUUtilAvg))
	fmt.Println("mean capacity-violation fraction:")
	fmt.Printf("  engine %.3f   sim %.3f\n", mean(eng.Violation), mean(res.Violation))

	// 5. Observability: the sampled decision traces and the rolling
	//    cluster-telemetry ring the engine kept while it ran.
	_, committed := e.Traces().Counts()
	fmt.Printf("\ndecision traces: %d sampled (every 16th), %d retained\n",
		committed, e.Traces().Len())
	for _, dt := range e.Traces().Last(1, "placed") {
		fmt.Printf("  pod %d (%s/%s) -> node %d score %.4f: %d candidates, %d visited, %d pruned\n",
			dt.PodID, dt.App, dt.SLO, dt.Node, dt.Score, dt.Candidates, dt.Visited, dt.Pruned)
		for _, sp := range dt.Spans {
			fmt.Printf("    %-10s %6.1fµs\n", sp.Stage, float64(sp.DurNs)/1e3)
		}
	}
	if last, ok := e.History().Last(); ok {
		fmt.Printf("telemetry ring: %d samples; last t=%ds cpu_alloc %.3f cpu_util %.3f overcommit %.2f running %v\n",
			e.History().Len(), last.T, last.CPUAlloc, last.CPUUtil, last.CPUOverCommit, last.Running)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
