// Colocation: the workload study the paper's introduction motivates —
// co-locating latency-sensitive services with best-effort batch jobs on
// one cluster. The example shows the valley-filling effect (Implication 1):
// BE load runs anti-phased with the diurnal LS cycle, the per-class pod
// utilizations move in opposite directions, and the production scheduler's
// usage-based BE over-commitment fills the LS troughs.
//
//	go run ./examples/colocation
package main

import (
	"fmt"

	"unisched"
	"unisched/internal/stats"
	"unisched/internal/texttab"
)

func main() {
	// A full diurnal cycle so both phases of the valley-filling show.
	cfg := unisched.SmallWorkload()
	cfg.NumNodes = 24
	cfg.Horizon = 24 * 3600
	w := unisched.MustGenerateWorkload(cfg)

	c := unisched.NewCluster(w)
	res := unisched.Simulate(w, c, unisched.NewAlibabaScheduler(c, 1), unisched.SimConfig{})

	fmt.Println("per-class mean pod CPU utilization over one day:")
	fmt.Printf("  LS %s\n", texttab.Sparkline(res.ClassUtil[unisched.SLOLS], 72))
	fmt.Printf("  BE %s\n", texttab.Sparkline(res.ClassUtil[unisched.SLOBE], 72))

	corr := stats.Pearson(res.ClassUtil[unisched.SLOLS], res.ClassUtil[unisched.SLOBE])
	fmt.Printf("correlation(LS, BE) = %.2f  (negative: BE fills LS valleys)\n\n", corr)

	fmt.Printf("host CPU: %s\n", texttab.Sparkline(res.CPUUtilAvg, 72))
	fmt.Printf("  mean %.3f, max-host peak %.3f — overall utilization stays\n"+
		"  far below the per-host peaks, the Fig. 4 signature\n",
		stats.Mean(res.CPUUtilAvg), stats.Max(res.CPUUtilMax))

	// How much of the BE work rode in LS troughs? Compare BE usage during
	// the LS peak third vs the LS trough third of the day.
	ls := res.ClassUtil[unisched.SLOLS]
	be := res.ClassUtil[unisched.SLOBE]
	idx := stats.Rank(ls)
	var peakBE, troughBE []float64
	third := len(ls) / 3
	for i := range ls {
		switch {
		case idx[i] > 2*third:
			peakBE = append(peakBE, be[i])
		case idx[i] <= third:
			troughBE = append(troughBE, be[i])
		}
	}
	fmt.Printf("\nBE pod utilization during LS troughs: %.3f vs LS peaks: %.3f\n",
		stats.Mean(troughBE), stats.Mean(peakBE))
}
