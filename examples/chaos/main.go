// Chaos: schedule a workload with Optum while nodes crash, drain and
// recover mid-run and the profiler blacks out, then print how the
// scheduler absorbed the disruption — evictions, reschedules,
// time-to-replacement, and capacity lost.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"

	"unisched"
)

func main() {
	// 1. A reproducible synthetic workload.
	cfg := unisched.SmallWorkload()
	cfg.NumNodes = 24
	w := unisched.MustGenerateWorkload(cfg)
	fmt.Printf("workload: %d nodes, %d apps, %d pods\n",
		len(w.Nodes), len(w.Apps), len(w.Pods))

	// 2. Offline profiling, exactly as in the quickstart.
	col := unisched.NewCollector(1)
	warm := unisched.NewCluster(w)
	unisched.Simulate(w, warm, unisched.NewAlibabaScheduler(warm, 1),
		unisched.SimConfig{Collector: col})
	profiles, err := unisched.TrainProfiles(col)
	if err != nil {
		log.Fatal(err)
	}

	// 3. A scripted fault storm: two node crashes an hour in (one recovers
	// after 30 minutes, one stays down), a drain, and a 20-minute profiler
	// blackout during which Optum falls back to conservative request-based
	// scoring.
	schedule := []unisched.ChaosEvent{
		{At: 3600, Kind: unisched.NodeFail, NodeID: 3},
		{At: 3600, Kind: unisched.NodeFail, NodeID: 7},
		{At: 3600, Kind: unisched.BlackoutStart, For: 1200},
		{At: 5400, Kind: unisched.NodeRecover, NodeID: 3},
		{At: 7200, Kind: unisched.NodeDrain, NodeID: 11},
		{At: 9000, Kind: unisched.NodeRecover, NodeID: 11},
	}
	inj := unisched.NewChaosInjector(42, schedule, unisched.ChaosRates{})

	// 4. Run Optum with the injector wired in twice: as the fault source
	// (SimConfig.Chaos) and as the blackout signal (Profiles.Blackout).
	profiles.Blackout = inj
	c := unisched.NewCluster(w)
	optum := unisched.NewOptum(c, profiles, unisched.DefaultOptumOptions(), 1)
	res := unisched.Simulate(w, c, optum, unisched.SimConfig{Chaos: inj})

	fmt.Printf("placed %d pods (%d still pending at the end)\n", res.Placed, res.Pending)
	for _, e := range inj.Applied() {
		switch e.Kind {
		case unisched.NodeFail, unisched.NodeRecover, unisched.NodeDrain:
			fmt.Printf("  t=%5ds %-13s node=%d\n", e.At, e.Kind, e.NodeID)
		default:
			fmt.Printf("  t=%5ds %s\n", e.At, e.Kind)
		}
	}

	d := res.Disruption
	fmt.Printf("evictions %d, rescheduled %d, retry budget exhausted %d\n",
		d.Evictions, d.Reschedules, d.Exhausted)
	var ttr float64
	for _, t := range d.TimeToReplace {
		ttr += t
	}
	if len(d.TimeToReplace) > 0 {
		fmt.Printf("mean time to replacement %.0fs over %d displacements\n",
			ttr/float64(len(d.TimeToReplace)), len(d.TimeToReplace))
	}
	maxDown := 0
	var lost float64
	for i, n := range d.DownNodes {
		if n > maxDown {
			maxDown = n
		}
		lost += d.CapacityLost[i]
	}
	fmt.Printf("max simultaneous down nodes %d, mean capacity lost %.3f\n",
		maxDown, lost/float64(len(d.CapacityLost)))

	var viol float64
	for _, v := range res.Violation {
		viol += v
	}
	fmt.Printf("capacity violation rate %.5f\n", viol/float64(len(res.Violation)))
}
