// Quickstart: generate a small synthetic unified-scheduling workload,
// profile it offline, schedule it with Optum, and print the outcome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"unisched"
)

func main() {
	// 1. A reproducible synthetic workload with the Alibaba-trace shapes.
	cfg := unisched.SmallWorkload()
	cfg.NumNodes = 24
	w := unisched.MustGenerateWorkload(cfg)
	fmt.Printf("workload: %d nodes, %d apps, %d pods\n",
		len(w.Nodes), len(w.Apps), len(w.Pods))

	// 2. Offline profiling: replay once under the production baseline with
	// the Tracing Coordinator attached, then train the per-application
	// interference models and the pairwise ERO table.
	col := unisched.NewCollector(1)
	warm := unisched.NewCluster(w)
	unisched.Simulate(w, warm, unisched.NewAlibabaScheduler(warm, 1),
		unisched.SimConfig{Collector: col})
	profiles, err := unisched.TrainProfiles(col)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiles: %d co-location pairs observed, %d LS + %d BE models\n",
		profiles.ERO.Pairs(), len(profiles.Models.LS), len(profiles.Models.BE))

	// 3. Schedule the same workload with Optum.
	c := unisched.NewCluster(w)
	optum := unisched.NewOptum(c, profiles, unisched.DefaultOptumOptions(), 1)
	res := unisched.Simulate(w, c, optum, unisched.SimConfig{})

	fmt.Printf("placed %d pods (%d still pending at the end)\n", res.Placed, res.Pending)
	var cpu, good float64
	for i := range res.CPUUtilBusy {
		cpu += res.CPUUtilBusy[i]
		good += res.GoodputBusy[i]
	}
	n := float64(len(res.CPUUtilBusy))
	fmt.Printf("busy-host CPU utilization %.3f, goodput %.3f\n", cpu/n, good/n)

	var viol float64
	for _, v := range res.Violation {
		viol += v
	}
	fmt.Printf("capacity violation rate %.5f\n", viol/float64(len(res.Violation)))
}
