// Sensitivity: the §5.5 parameter study — sweep the objective weights
// omega_o (LS interference) and omega_b (BE interference) and observe the
// utilization / performance trade-off that led the paper to pick 0.7/0.3.
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"
	"os"

	"unisched"
	"unisched/internal/experiments"
	"unisched/internal/texttab"
)

func main() {
	scale := unisched.QuickEvaluation()
	fmt.Println("building evaluation setup (baseline replay + profiling)...")
	setup, err := unisched.NewEvaluation(scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sweeping omega_o x omega_b (one full replay per cell)...")
	pts := experiments.Fig21Sensitivity(setup, []float64{0.1, 0.5, 0.9})

	tb := texttab.New("omega_o", "omega_b", "util improvement pp", "BE CT violation", "LS PSI violation")
	for _, p := range pts {
		tb.Row(p.OmegaO, p.OmegaB, p.MeanImprovement, p.CTViolationRate, p.PSIViolationRate)
	}
	tb.Render(os.Stdout)

	fmt.Println("\nthe Fig. 21 trade-off: small weights chase utilization and pay in")
	fmt.Println("performance violations; large weights protect pods and give back")
	fmt.Println("utilization. The paper settles on omega_o=0.7, omega_b=0.3.")
}
