// Parallel: the §4.4 deployment scenario — several distributed Optum
// schedulers deciding concurrently over one cluster, with the Deployment
// Module resolving same-host conflicts (the highest-scoring decision
// deploys; the rest are re-dispatched).
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"

	"unisched"
)

func main() {
	cfg := unisched.SmallWorkload()
	cfg.NumNodes = 24
	w := unisched.MustGenerateWorkload(cfg)

	// Offline profiling, shared by every scheduler instance.
	col := unisched.NewCollector(1)
	warm := unisched.NewCluster(w)
	unisched.Simulate(w, warm, unisched.NewAlibabaScheduler(warm, 1),
		unisched.SimConfig{Collector: col})
	profiles, err := unisched.TrainProfiles(col)
	if err != nil {
		log.Fatal(err)
	}

	for _, k := range []int{1, 2, 4} {
		c := unisched.NewCluster(w)
		members := make([]unisched.Scheduler, k)
		for m := range members {
			members[m] = unisched.NewOptum(c, profiles, unisched.DefaultOptumOptions(), int64(10+m))
		}
		s := unisched.NewParallelSchedulers(fmt.Sprintf("Optum-x%d", k), members...)
		res := unisched.Simulate(w, c, s, unisched.SimConfig{ConflictResolve: k > 1})

		var wait float64
		for _, pw := range res.Waits {
			wait += float64(pw.Wait)
		}
		fmt.Printf("%-9s placed %4d/%4d pods, mean wait %5.1fs\n",
			s.Name(), res.Placed, len(w.Pods), wait/float64(len(res.Waits)))
	}
	fmt.Println("\nmore parallel schedulers decide with less coordination: conflicts")
	fmt.Println("rise and the one-winner-per-host rule stretches waiting times — the")
	fmt.Println("scalability/throughput trade-off the Deployment Module manages.")
}
