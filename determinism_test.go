package unisched

import (
	"reflect"
	"testing"
)

// TestSimulateDeterministic guards the shared scheduling paths against
// accidental nondeterminism: two runs with identical workload, cluster,
// scheduler seeds, and fault schedule must produce identical placements
// and disruption counters. The online engine work shares these paths; a
// stray map-iteration dependence or time.Now leak would show up here.
func TestSimulateDeterministic(t *testing.T) {
	run := func() *SimResult {
		cfg := SmallWorkload()
		w := MustGenerateWorkload(cfg)
		c := NewCluster(w)
		sim := SimConfig{
			Chaos: NewChaosInjector(3, nil, DefaultChaosRates()),
			Retry: DefaultRetryPolicy(),
		}
		return Simulate(w, c, NewAlibabaScheduler(c, 1), sim)
	}
	a, b := run(), run()

	if a.Placed != b.Placed || a.Pending != b.Pending {
		t.Fatalf("placement counts diverge: %d/%d vs %d/%d",
			a.Placed, a.Pending, b.Placed, b.Pending)
	}
	if !reflect.DeepEqual(a.NodeOf, b.NodeOf) {
		diff := 0
		for id, n := range a.NodeOf {
			if b.NodeOf[id] != n {
				diff++
			}
		}
		t.Fatalf("placements diverge on %d of %d pods", diff, len(a.NodeOf))
	}
	da, db := a.Disruption, b.Disruption
	if da.Evictions != db.Evictions || da.Reschedules != db.Reschedules || da.Exhausted != db.Exhausted {
		t.Fatalf("disruption counters diverge: %+v vs %+v",
			struct{ E, R, X int }{da.Evictions, da.Reschedules, da.Exhausted},
			struct{ E, R, X int }{db.Evictions, db.Reschedules, db.Exhausted})
	}
	if !reflect.DeepEqual(da.TimeToReplace, db.TimeToReplace) {
		t.Fatal("time-to-replace series diverge")
	}
	if !reflect.DeepEqual(da.DownNodes, db.DownNodes) {
		t.Fatal("down-node series diverge")
	}
	if !reflect.DeepEqual(a.CPUUtilAvg, b.CPUUtilAvg) || !reflect.DeepEqual(a.Violation, b.Violation) {
		t.Fatal("utilization series diverge")
	}
	if !reflect.DeepEqual(a.BEPreempted, b.BEPreempted) {
		t.Fatal("preemption counts diverge")
	}
	// SchedLatency is wall-clock and intentionally excluded.
}
