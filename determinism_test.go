package unisched

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// schedulerBuilders lists every baseline scheduler under the determinism
// gate. Optum is covered separately by TestOptumDeterministic in
// internal/core (it needs trained profiles).
var schedulerBuilders = []struct {
	name  string
	build func(c *Cluster, seed int64) Scheduler
}{
	{"Alibaba", NewAlibabaScheduler},
	{"Borg-like", NewBorgScheduler},
	{"N-sigma", NewNSigmaScheduler},
	{"RC-like", NewRCScheduler},
	{"Medea", NewMedeaScheduler},
	{"Kube-like", NewKubeScheduler},
}

// TestSimulateDeterministic guards the shared scheduling paths against
// accidental nondeterminism: for every scheduler, two runs with identical
// workload, cluster, scheduler seeds, and fault schedule must produce
// identical placements and disruption counters. A stray map-iteration
// dependence, goroutine race, or time.Now leak in the pipeline, the index,
// or a plugin would show up here.
func TestSimulateDeterministic(t *testing.T) {
	for _, sb := range schedulerBuilders {
		sb := sb
		t.Run(sb.name, func(t *testing.T) {
			t.Parallel()
			run := func() *SimResult {
				cfg := SmallWorkload()
				w := MustGenerateWorkload(cfg)
				c := NewCluster(w)
				sim := SimConfig{
					Chaos: NewChaosInjector(3, nil, DefaultChaosRates()),
					Retry: DefaultRetryPolicy(),
				}
				return Simulate(w, c, sb.build(c, 1), sim)
			}
			compareSimResults(t, run(), run())
		})
	}
}

func compareSimResults(t *testing.T, a, b *SimResult) {
	t.Helper()
	if a.Placed != b.Placed || a.Pending != b.Pending {
		t.Fatalf("placement counts diverge: %d/%d vs %d/%d",
			a.Placed, a.Pending, b.Placed, b.Pending)
	}
	if !reflect.DeepEqual(a.NodeOf, b.NodeOf) {
		diff := 0
		for id, n := range a.NodeOf {
			if b.NodeOf[id] != n {
				diff++
			}
		}
		t.Fatalf("placements diverge on %d of %d pods", diff, len(a.NodeOf))
	}
	da, db := a.Disruption, b.Disruption
	if da.Evictions != db.Evictions || da.Reschedules != db.Reschedules || da.Exhausted != db.Exhausted {
		t.Fatalf("disruption counters diverge: %+v vs %+v",
			struct{ E, R, X int }{da.Evictions, da.Reschedules, da.Exhausted},
			struct{ E, R, X int }{db.Evictions, db.Reschedules, db.Exhausted})
	}
	if !reflect.DeepEqual(da.TimeToReplace, db.TimeToReplace) {
		t.Fatal("time-to-replace series diverge")
	}
	if !reflect.DeepEqual(da.DownNodes, db.DownNodes) {
		t.Fatal("down-node series diverge")
	}
	if !reflect.DeepEqual(a.CPUUtilAvg, b.CPUUtilAvg) || !reflect.DeepEqual(a.Violation, b.Violation) {
		t.Fatal("utilization series diverge")
	}
	if !reflect.DeepEqual(a.BEPreempted, b.BEPreempted) {
		t.Fatal("preemption counts diverge")
	}
	if (a.Pipeline == nil) != (b.Pipeline == nil) {
		t.Fatal("pipeline stats presence diverges")
	}
	if a.Pipeline != nil {
		pa, pb := *a.Pipeline, *b.Pipeline
		// Stage timings are wall-clock; the counters must match exactly.
		pa.StageMicros, pb.StageMicros = nil, nil
		pa.StageMicrosPerDecision, pb.StageMicrosPerDecision = nil, nil
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("pipeline counters diverge:\n%+v\n%+v", pa, pb)
		}
	}
	// SchedLatency is wall-clock and intentionally excluded.
}

// TestEngineDeterministic runs every baseline through the online engine's
// single-worker fast mode twice and requires identical terminal pod states:
// the pipeline and indexed candidate store behave identically under the
// engine's lock-and-commit driver too.
func TestEngineDeterministic(t *testing.T) {
	for _, sb := range schedulerBuilders {
		sb := sb
		t.Run(sb.name, func(t *testing.T) {
			t.Parallel()
			a := enginePodStates(t, sb.build)
			b := enginePodStates(t, sb.build)
			if !reflect.DeepEqual(a, b) {
				diff := 0
				for id, st := range a {
					if b[id] != st {
						diff++
					}
				}
				t.Fatalf("engine pod states diverge on %d of %d pods", diff, len(a))
			}
		})
	}
}

// enginePodStates replays the small workload through a deterministic engine
// configuration — one worker, fast virtual clock, every pod submitted
// before Start so queue order is fixed — and returns each pod's terminal
// phase and host.
func enginePodStates(t *testing.T, build func(c *Cluster, seed int64) Scheduler) map[int]string {
	t.Helper()
	cfg := SmallWorkload()
	w := MustGenerateWorkload(cfg)
	c := NewCluster(w)
	e := NewEngine(c, func(cc *Cluster, worker int, seed int64) Scheduler {
		return build(cc, seed)
	}, EngineConfig{
		Workers:  1,
		QueueCap: len(w.Pods) + 1,
		Horizon:  w.Horizon,
		Seed:     42,
	})
	for _, p := range w.Pods {
		if err := e.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	e.Start()
	if !e.Drain(60 * time.Second) {
		e.Stop()
		t.Fatal("engine did not settle")
	}
	e.Stop()
	out := make(map[int]string, len(w.Pods))
	for _, p := range w.Pods {
		st, ok := e.PodStatus(p.ID)
		if !ok {
			t.Fatalf("pod %d lost", p.ID)
		}
		out[p.ID] = fmt.Sprintf("%s@%d", st.Phase, st.Node)
	}
	return out
}
