# Development targets. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: build test race vet fmt check bench bench-engine bench-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The schedulers fan work out across goroutines (core.Parallel, PPO
# sampling); the race detector must stay green.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: vet fmt build test race

# bench runs the figure benchmarks, then the engine throughput benchmarks,
# committing the latter as machine-parsable JSON (name / ns-op / allocs /
# placements-per-sec) so the perf trajectory accumulates across changes.
bench: bench-engine
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# The engine throughput benchmarks are heavyweight (a full workload drain
# per iteration) and run at 3x; the scoreHost microbenchmark is cheap and
# needs iterations to be meaningful, so it runs at 2000x. Both feed one
# JSON document.
bench-engine:
	{ $(GO) test -bench 'BenchmarkEngine|BenchmarkPipeline' -benchmem -benchtime 3x -run '^$$' ./internal/engine; \
	  $(GO) test -bench 'BenchmarkScoreHost' -benchmem -benchtime 2000x -run '^$$' ./internal/core; } \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_engine.json

# bench-check is the CI perf-regression gate: re-run the engine
# throughput benchmark and fail if workers=4 placements/s regresses more
# than 10% against the committed BENCH_engine.json baseline. Single-run
# benchmarks on shared hardware are noisy; the tolerance absorbs normal
# jitter while still catching structural regressions.
bench-check:
	$(GO) test -bench 'BenchmarkEngineThroughput' -benchtime 3x -run '^$$' ./internal/engine \
		| tee /dev/stderr | $(GO) run ./cmd/benchcheck \
			-baseline BENCH_engine.json \
			-name BenchmarkEngineThroughput/workers=4 \
			-metric placements/s -tolerance 10
