# Development targets. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: build test race vet fmt check bench bench-engine bench-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The schedulers fan work out across goroutines (core.Parallel, PPO
# sampling); the race detector must stay green.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: vet fmt build test race

# bench runs the figure benchmarks, then the engine throughput benchmarks,
# committing the latter as machine-parsable JSON (name / ns-op / allocs /
# placements-per-sec) so the perf trajectory accumulates across changes.
bench: bench-engine
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# The engine throughput benchmarks are heavyweight (a full workload drain
# per iteration) and run at 3x; the federation replay drains a 100k-node
# fleet per partition count and runs once; the scoreHost microbenchmark
# is cheap and needs iterations to be meaningful, so it runs at 2000x.
# All feed one JSON document.
bench-engine:
	{ $(GO) test -bench 'BenchmarkEngine|BenchmarkPipeline' -benchmem -benchtime 3x -run '^$$' ./internal/engine; \
	  $(GO) test -bench 'BenchmarkFederationThroughput' -benchmem -benchtime 1x -run '^$$' -timeout 1800s ./internal/federation; \
	  $(GO) test -bench 'BenchmarkScoreHost' -benchmem -benchtime 2000x -run '^$$' ./internal/core; } \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_engine.json

# bench-check is the CI perf-regression gate: re-run the gated benchmarks
# and fail when any regresses past its tolerance against the committed
# BENCH_engine.json baseline, or when a baseline benchmark a -require
# pattern matches is missing from the fresh run (a renamed or silently
# skipped benchmark must not pass as "no regression"). Single-run
# benchmarks on shared hardware are noisy; the tolerances absorb normal
# jitter while still catching structural regressions. The federation
# replay runs only parts=1 and parts=4 here — parts=1 anchors the
# speedup_x metric, and the 25% tolerance on a ~4x baseline keeps the
# federation's headline scaling above ~3x.
bench-check:
	{ $(GO) test -bench 'BenchmarkEngineThroughput|BenchmarkEngineSoak' -benchtime 3x -run '^$$' ./internal/engine; \
	  $(GO) test -bench 'BenchmarkFederationThroughput/parts=(1|4)$$' -benchtime 1x -run '^$$' -timeout 1800s ./internal/federation; } \
		| tee /dev/stderr | $(GO) run ./cmd/benchcheck \
			-baseline BENCH_engine.json \
			-gate 'BenchmarkEngineThroughput/workers=4,placements/s,10' \
			-gate 'BenchmarkEngineSoak/workers=4,placements/s,25' \
			-gate 'BenchmarkFederationThroughput/parts=4,speedup_x,25' \
			-require 'BenchmarkEngineThroughput/workers=[124]$$' \
			-require 'BenchmarkEngineSoak/workers=[1248]$$' \
			-require 'BenchmarkFederationThroughput/parts=[14]$$'
