# Development targets. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: build test race vet fmt check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The schedulers fan work out across goroutines (core.Parallel, PPO
# sampling); the race detector must stay green.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: vet fmt build test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
