package unisched

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"

	"unisched/internal/experiments"
)

// goldenHashes pins the exact placement stream (pod->node map, placed and
// pending counts) each scheduler produces on the fixed-seed quick workload.
// The hashes were captured from the pre-pipeline scan-loop implementations;
// the plugin pipeline must reproduce them bit-for-bit. Any intentional
// behaviour change must re-record these values and say why in the commit.
var goldenHashes = map[experiments.SchedulerName]struct {
	hash    uint64
	placed  int
	pending int
}{
	experiments.NameAlibaba:  {0x6be21411aef2341e, 1342, 112},
	experiments.NameBorgLike: {0x3817301cd19cdd9e, 1367, 87},
	experiments.NameNSigma:   {0x5ef8b4759fda5402, 1248, 206},
	experiments.NameRCLike:   {0xacff1ad8c4f69df5, 1420, 34},
	experiments.NameMedea:    {0x07603dbdee4dd752, 1360, 94},
	experiments.NameKubeLike: {0x516c874cfe6ff092, 1249, 205},
	experiments.NameOptum:    {0xed513f3b967ef4de, 1442, 12},
}

// placementHash folds a run's placement stream into one FNV-64a value.
func placementHash(nodeOf map[int]int, placed, pending int) uint64 {
	h := fnv.New64a()
	ids := make([]int, 0, len(nodeOf))
	for id := range nodeOf {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(h, "%d:%d;", id, nodeOf[id])
	}
	fmt.Fprintf(h, "placed=%d pending=%d", placed, pending)
	return h.Sum64()
}

// TestGoldenPlacementEquivalence replays every scheduler on the fixed-seed
// quick workload and checks the placement stream against the recorded
// pre-refactor hash — the acceptance gate that the staged pipeline (indexed
// candidate store, bucket pruning, plugin specs) changes *how* hosts are
// found, never *which* hosts are chosen.
func TestGoldenPlacementEquivalence(t *testing.T) {
	setup, err := experiments.NewSetup(experiments.QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range goldenHashes {
		res := setup.RunScheduler(name, DefaultOptumOptions())
		if res.Placed != want.placed || res.Pending != want.pending {
			t.Errorf("%s: placed/pending = %d/%d, want %d/%d",
				name, res.Placed, res.Pending, want.placed, want.pending)
		}
		if got := placementHash(res.NodeOf, res.Placed, res.Pending); got != want.hash {
			t.Errorf("%s: placement hash %#016x, want %#016x — the pipeline "+
				"changed which hosts are chosen", name, got, want.hash)
		}
	}
}
