// Command benchjson converts `go test -bench` text output on stdin into a
// machine-parsable JSON document, so benchmark trajectories can be
// committed and diffed across changes:
//
//	go test -bench . -benchmem ./internal/engine | benchjson -out BENCH_engine.json
//
// Only stdlib is used; custom metrics (e.g. placements/s) are preserved.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string  `json:"name"`
	N    int64   `json:"n"`
	NsOp float64 `json:"ns_op"`
	// AllocsOp and BytesOp are present with -benchmem.
	BytesOp  *float64 `json:"bytes_op,omitempty"`
	AllocsOp *float64 `json:"allocs_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line of the form
//
//	BenchmarkName-8  3  111882528 ns/op  36723 placements/s  42 B/op  12 allocs/op
//
// Fields come in (value, unit) pairs after the name and iteration count.
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	name := f[0]
	// Trim the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, N: n}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsOp = v
		case "B/op":
			b.BytesOp = &v
		case "allocs/op":
			b.AllocsOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
