// Command benchjson converts `go test -bench` text output on stdin into a
// machine-parsable JSON document, so benchmark trajectories can be
// committed and diffed across changes:
//
//	go test -bench . -benchmem ./internal/engine | benchjson -out BENCH_engine.json
//
// Only stdlib is used; custom metrics (e.g. placements/s) are preserved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"unisched/internal/benchfmt"
)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	rep, err := benchfmt.ParseStream(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
