package main

// Multi-tenant surface: bearer-token authentication and the /v1/quotas
// CRUD API. The -quota flag points at a JSON file declaring the admin
// token, the default tenant, and one entry per tenant with its token and
// quota caps; the file both seeds the engine's quota tree and defines who
// may submit as whom. Without -quota the daemon runs single-tenant and
// open, exactly as before.

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"

	"unisched/internal/engine"
	"unisched/internal/quota"
	"unisched/internal/trace"
)

// quotaFileTenant is one tenant entry in the -quota file.
type quotaFileTenant struct {
	Name string `json:"name"`
	// Token is the tenant's bearer token; submissions carrying it are
	// attributed to this tenant, whatever the pod spec claims.
	Token      string              `json:"token"`
	Guaranteed trace.Resources     `json:"guaranteed"`
	Max        trace.Resources     `json:"max,omitempty"`
	Queues     []quota.QueueConfig `json:"queues,omitempty"`
}

// quotaFile is the -quota file layout.
type quotaFile struct {
	// AdminToken authorizes quota CRUD and may submit on any tenant's
	// behalf.
	AdminToken    string            `json:"admin_token"`
	DefaultTenant string            `json:"default_tenant,omitempty"`
	Tenants       []quotaFileTenant `json:"tenants"`
}

// tenantAuth authenticates bearer tokens against the -quota file.
type tenantAuth struct {
	admin string
	// byTenant maps tenant name to its token; lookups iterate so every
	// comparison is constant-time.
	byTenant map[string]string
}

// loadQuotaConfig reads the -quota file and returns the quota tree plus
// the authenticator.
func loadQuotaConfig(path string) (*quota.Tree, *tenantAuth, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var qf quotaFile
	if err := json.Unmarshal(raw, &qf); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if qf.AdminToken == "" {
		return nil, nil, fmt.Errorf("%s: admin_token is required", path)
	}
	cfg := quota.Config{DefaultTenant: qf.DefaultTenant}
	auth := &tenantAuth{admin: qf.AdminToken, byTenant: make(map[string]string)}
	for _, t := range qf.Tenants {
		cfg.Tenants = append(cfg.Tenants, quota.TenantConfig{
			Name: t.Name, Guaranteed: t.Guaranteed, Max: t.Max, Queues: t.Queues,
		})
		if t.Token == "" {
			return nil, nil, fmt.Errorf("%s: tenant %q has no token", path, t.Name)
		}
		if t.Token == qf.AdminToken {
			return nil, nil, fmt.Errorf("%s: tenant %q reuses the admin token", path, t.Name)
		}
		if _, dup := auth.byTenant[t.Name]; dup {
			return nil, nil, fmt.Errorf("%s: tenant %q declared twice", path, t.Name)
		}
		auth.byTenant[t.Name] = t.Token
	}
	qt, err := quota.New(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return qt, auth, nil
}

var errBadToken = errors.New("missing or unknown bearer token")

// authenticate resolves the request's Authorization header. It returns the
// authenticated tenant name ("" with admin=true for the admin token).
func (ta *tenantAuth) authenticate(r *http.Request) (tenant string, admin bool, err error) {
	h := r.Header.Get("Authorization")
	tok, ok := strings.CutPrefix(h, "Bearer ")
	if !ok || tok == "" {
		return "", false, errBadToken
	}
	if subtle.ConstantTimeCompare([]byte(tok), []byte(ta.admin)) == 1 {
		return "", true, nil
	}
	// Compare against every tenant token so timing does not reveal which
	// tenants exist; the map is small (tens of tenants).
	match := ""
	for name, t := range ta.byTenant {
		if subtle.ConstantTimeCompare([]byte(tok), []byte(t)) == 1 {
			match = name
		}
	}
	if match == "" {
		return "", false, errBadToken
	}
	return match, false, nil
}

// requireAuth authenticates or writes a 401. The boolean reports success.
func (a *api) requireAuth(rw http.ResponseWriter, r *http.Request) (string, bool, bool) {
	if a.auth == nil {
		return "", true, true // open mode: everyone is admin
	}
	tenant, admin, err := a.auth.authenticate(r)
	if err != nil {
		rw.Header().Set("WWW-Authenticate", `Bearer realm="unischedd"`)
		http.Error(rw, err.Error(), http.StatusUnauthorized)
		return "", false, false
	}
	return tenant, admin, true
}

// getQuotas serves GET /v1/quotas: the full tree snapshot with usage and
// fair shares. Any valid token (or open mode) may read it.
func (a *api) getQuotas(rw http.ResponseWriter, r *http.Request) {
	if _, _, ok := a.requireAuth(rw, r); !ok {
		return
	}
	snap, err := a.e.QuotaSnapshot()
	if err != nil {
		http.Error(rw, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(rw, http.StatusOK, snap)
}

// putQuota serves PUT /v1/quotas/{tenant}: create or update one tenant
// subtree. Admin only; the path names the tenant and wins over the body.
func (a *api) putQuota(rw http.ResponseWriter, r *http.Request) {
	_, admin, ok := a.requireAuth(rw, r)
	if !ok {
		return
	}
	if !admin {
		http.Error(rw, "admin token required", http.StatusForbidden)
		return
	}
	var cfg quota.TenantConfig
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	name := r.PathValue("tenant")
	if cfg.Name != "" && cfg.Name != name {
		http.Error(rw, "body tenant name does not match the path", http.StatusBadRequest)
		return
	}
	cfg.Name = name
	switch err := a.e.SetTenantQuota(cfg); {
	case err == nil:
		snap, _ := a.e.QuotaSnapshot()
		writeJSON(rw, http.StatusOK, snap)
	case errors.Is(err, engine.ErrNoQuota):
		http.Error(rw, err.Error(), http.StatusNotFound)
	default:
		http.Error(rw, err.Error(), http.StatusBadRequest)
	}
}

// deleteQuota serves DELETE /v1/quotas/{tenant}. Admin only; a tenant
// still holding admitted usage fails with 409.
func (a *api) deleteQuota(rw http.ResponseWriter, r *http.Request) {
	_, admin, ok := a.requireAuth(rw, r)
	if !ok {
		return
	}
	if !admin {
		http.Error(rw, "admin token required", http.StatusForbidden)
		return
	}
	switch err := a.e.DeleteTenantQuota(r.PathValue("tenant")); {
	case err == nil:
		rw.WriteHeader(http.StatusNoContent)
	case errors.Is(err, quota.ErrInUse):
		http.Error(rw, err.Error(), http.StatusConflict)
	case errors.Is(err, quota.ErrUnknownTenant), errors.Is(err, engine.ErrNoQuota):
		http.Error(rw, err.Error(), http.StatusNotFound)
	default:
		http.Error(rw, err.Error(), http.StatusBadRequest)
	}
}
