package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"unisched/internal/trace"
)

// startRun boots the daemon in-process on an ephemeral port and returns
// its base URL, the exit-code channel, and the cancel func that stands in
// for SIGTERM.
func startRun(t *testing.T, dataDir string, stdout io.Writer, extra ...string) (string, chan int, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	args := []string{
		"-addr", "127.0.0.1:0",
		"-nodes", "8", "-hours", "1", "-seed", "3",
		"-workers", "2", "-queue", "256",
		"-speedup", "30000", // 1ms ticks
		"-trace-sample", "0",
		"-data-dir", dataDir,
		"-checkpoint-every", "10",
		"-fsync-every", "1ms",
	}
	args = append(args, extra...)
	addrCh := make(chan string, 1)
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, args, stdout, func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never started listening")
	}
	base := "http://" + addr
	hc := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := hc.Get(base + "/readyz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if ok {
				return base, codeCh, cancel
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// post submits one pod and returns the HTTP status (0 on transport error).
func post(hc *http.Client, base string, p *trace.Pod) int {
	body, _ := json.Marshal(p)
	resp, err := hc.Post(base+"/v1/pods", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func stdoutHash(t *testing.T, out, key string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, key+"=") {
			return strings.TrimPrefix(line, key+"=")
		}
	}
	t.Fatalf("stdout has no %s= line:\n%s", key, out)
	return ""
}

// TestRunGracefulDrain drives a full boot → load → SIGTERM → drain cycle
// in-process: every submission acknowledged before the signal must survive
// the drain (the final checkpoint commits them), /readyz must flip off the
// moment shutdown starts, the process must exit 0 and print the final
// state hash, and a restart must recover bit-identical state.
func TestRunGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("drain cycle takes seconds")
	}
	dir := t.TempDir()

	cfg := trace.DefaultConfig()
	cfg.Seed = 3
	cfg.NumNodes = 8
	cfg.Horizon = 3600
	w, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pods := w.Pods
	if len(pods) > 400 {
		pods = pods[:400]
	}

	var out1 bytes.Buffer
	base, codeCh, cancel := startRun(t, dir, &out1)
	hc := &http.Client{Timeout: 5 * time.Second}

	// Submit under concurrent load, then cancel (SIGTERM) while clients
	// are mid-flight. Requests issued before the cancel must all get
	// answered — http.Server.Shutdown waits for in-flight handlers.
	// Only a 202 creates a durability obligation: pods whose request was
	// cut off by the closing listener (transport error) or rejected
	// during shutdown were never acknowledged and may legitimately be
	// lost.
	var mu sync.Mutex
	accepted := make(map[int]bool)
	var wg sync.WaitGroup
	work := make(chan *trace.Pod, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				if post(hc, base, p) == http.StatusAccepted {
					mu.Lock()
					accepted[p.ID] = true
					mu.Unlock()
				}
			}
		}()
	}
	for i, p := range pods {
		work <- p
		if i == len(pods)/2 {
			cancel() // SIGTERM mid-load; the queued half keeps submitting
			break
		}
	}
	close(work)
	wg.Wait()

	// /readyz flips off (or the listener closes) before the drain ends;
	// it must never report ready again.
	flipDeadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := hc.Get(base + "/readyz")
		if err != nil {
			break // listener closed: also a valid end state
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(flipDeadline) {
			t.Fatal("/readyz still reports ready after SIGTERM")
		}
		time.Sleep(5 * time.Millisecond)
	}

	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("run exited %d after graceful SIGTERM, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}

	mu.Lock()
	nAccepted := len(accepted)
	mu.Unlock()
	if nAccepted == 0 {
		t.Fatal("no submissions accepted before the signal; test proves nothing")
	}

	final := stdoutHash(t, out1.String(), "final_state_hash")
	stdoutHash(t, out1.String(), "recovered_state_hash") // printed at boot even on a fresh dir
	if !strings.Contains(out1.String(), `"submitted"`) {
		t.Fatalf("final snapshot missing from stdout:\n%s", out1.String())
	}

	// Restart on the same data dir: recovery must land exactly on the
	// drained state, and every admission acknowledged before the signal
	// must already be known (409 duplicate on resubmission).
	var out2 bytes.Buffer
	base2, codeCh2, cancel2 := startRun(t, dir, &out2)
	for _, p := range pods {
		if !accepted[p.ID] {
			continue
		}
		if code := post(hc, base2, p); code != http.StatusConflict {
			t.Fatalf("pod %d was acknowledged before SIGTERM but resubmission got %d, want 409: lost in the drain", p.ID, code)
		}
	}
	cancel2()
	select {
	case code := <-codeCh2:
		if code != 0 {
			t.Fatalf("second run exited %d, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("second run did not exit")
	}
	if got := stdoutHash(t, out2.String(), "recovered_state_hash"); got != final {
		t.Fatalf("recovered state hash %s != pre-shutdown hash %s", got, final)
	}
}

// TestRunBadFlags checks flag errors exit with the usage code without
// touching the network.
func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, nil); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-log-format", "yaml"}, &out, nil); code != 2 {
		t.Fatalf("bad log format exit = %d, want 2", code)
	}
}
