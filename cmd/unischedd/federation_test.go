package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"unisched/internal/federation"
	"unisched/internal/obs"
	"unisched/internal/trace"
)

// startDaemon boots one in-process daemon with the given args on an
// ephemeral port and waits for /readyz.
func startDaemon(t *testing.T, stdout io.Writer, args ...string) (string, chan int, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	codeCh := make(chan int, 1)
	full := append([]string{"-addr", "127.0.0.1:0"}, args...)
	go func() {
		codeCh <- run(ctx, full, stdout, func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never started listening")
	}
	base := "http://" + addr
	hc := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := hc.Get(base + "/readyz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if ok {
				return base, codeCh, cancel
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFederationDaemons boots two partition daemons plus a coordinator
// fronting them over HTTP, replays pods through the coordinator, and
// checks conservation, status lookups, and both Prometheus surfaces.
func TestFederationDaemons(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon boot takes seconds")
	}
	// The same generator arguments every daemon gets, so all three agree
	// on the catalogue.
	cfg := trace.DefaultConfig()
	cfg.Seed = 5
	cfg.NumNodes = 16
	cfg.Horizon = 3600
	w, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pods := w.Pods
	if len(pods) > 300 {
		pods = pods[:300]
	}

	partArgs := []string{
		"-nodes", "16", "-hours", "1", "-seed", "5",
		"-workers", "1", "-queue", "128",
		"-speedup", "30000",
		"-trace-sample", "0",
		"-partition-count", "2",
	}
	var pout0, pout1, cout bytes.Buffer
	base0, code0, cancel0 := startDaemon(t, &pout0, append(partArgs, "-partition-index", "0")...)
	base1, code1, cancel1 := startDaemon(t, &pout1, append(partArgs, "-partition-index", "1")...)
	baseC, codeC, cancelC := startDaemon(t, &cout, "-federation", base0+","+base1)

	hc := &http.Client{Timeout: 5 * time.Second}
	accepted, shed := 0, 0
	for _, p := range pods {
		switch code := post(hc, baseC, p); code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("pod %d: unexpected status %d", p.ID, code)
		}
	}
	if accepted == 0 {
		t.Fatal("no submissions accepted; test proves nothing")
	}

	// Wait for the federation to settle: nothing pending anywhere,
	// including the coordinator's own respill queue.
	var sn federation.Snapshot
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := hc.Get(baseC + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&sn)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if sn.Pending == 0 && sn.QueueDepth == 0 && sn.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("federation never settled: %+v", sn)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if got := int(sn.Submitted); got != accepted {
		t.Errorf("coordinator submitted %d, want %d accepted", got, accepted)
	}
	if lost := sn.Lost(); lost != 0 {
		t.Errorf("federation lost %d submissions: %+v", lost, sn.States)
	}
	if sn.PartitionCount != 2 || len(sn.Partitions) != 2 {
		t.Errorf("snapshot reports %d/%d partitions, want 2", sn.PartitionCount, len(sn.Partitions))
	}

	// A placed pod must be visible through the coordinator's status API.
	var stOK bool
	for _, p := range pods {
		resp, err := hc.Get(fmt.Sprintf("%s/v1/pods/%d", baseC, p.ID))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && strings.Contains(string(body), "phase") {
			stOK = true
			break
		}
	}
	if !stOK {
		t.Error("no pod visible through GET /v1/pods/{id}")
	}

	// Both exposition surfaces must validate: the coordinator's merged
	// page and a partition daemon's own.
	for _, u := range []string{baseC + "/metrics", base0 + "/metrics"} {
		resp, err := hc.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := obs.ValidateExposition(bytes.NewReader(raw)); err != nil {
			t.Errorf("%s: invalid exposition: %v", u, err)
		}
	}
	resp, err := hc.Get(baseC + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "unisched_partition_submitted_total") {
		t.Error("coordinator exposition missing per-partition families")
	}

	// Duplicate resubmission of an accepted pod must 409 through the
	// whole chain (coordinator dedup or partition dedup, either is fine
	// as long as it is not accepted twice).
	if code := post(hc, baseC, pods[0]); code != http.StatusConflict {
		t.Errorf("resubmitting pod %d got %d, want 409", pods[0].ID, code)
	}

	// Coordinator down first (partitions keep running), then partitions.
	cancelC()
	if code := <-codeC; code != 0 {
		t.Fatalf("coordinator exited %d\n%s", code, cout.String())
	}
	if !strings.Contains(cout.String(), `"submitted"`) {
		t.Errorf("coordinator final snapshot missing from stdout:\n%s", cout.String())
	}
	cancel0()
	cancel1()
	if code := <-code0; code != 0 {
		t.Fatalf("partition 0 exited %d", code)
	}
	if code := <-code1; code != 0 {
		t.Fatalf("partition 1 exited %d", code)
	}
}

// TestFederationStitchedTimeline boots two durable partition daemons
// with full lifecycle sampling plus a coordinator, pushes pods through
// the coordinator, and checks that a placed pod's cross-process timeline
// stitches: one trace ID across coordinator and partition, the
// coordinator's route span parented into the partition's stages, and the
// partition's stages running from submit through the journal fsync.
func TestFederationStitchedTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon boot takes seconds")
	}
	cfg := trace.DefaultConfig()
	cfg.Seed = 5
	cfg.NumNodes = 16
	cfg.Horizon = 3600
	w, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pods := w.Pods
	if len(pods) > 120 {
		pods = pods[:120]
	}

	partArgs := []string{
		"-nodes", "16", "-hours", "1", "-seed", "5",
		"-workers", "1", "-queue", "128",
		"-speedup", "30000",
		"-trace-sample", "0",
		"-lifecycle-sample", "1",
		"-partition-count", "2",
	}
	var pout0, pout1, cout bytes.Buffer
	base0, code0, cancel0 := startDaemon(t, &pout0,
		append(partArgs, "-partition-index", "0", "-data-dir", t.TempDir())...)
	base1, code1, cancel1 := startDaemon(t, &pout1,
		append(partArgs, "-partition-index", "1", "-data-dir", t.TempDir())...)
	baseC, codeC, cancelC := startDaemon(t, &cout,
		"-federation", base0+","+base1, "-lifecycle-sample", "1")
	defer func() {
		cancelC()
		<-codeC
		cancel0()
		cancel1()
		<-code0
		<-code1
	}()

	hc := &http.Client{Timeout: 5 * time.Second}
	accepted := 0
	for _, p := range pods {
		if post(hc, baseC, p) == http.StatusAccepted {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("no submissions accepted; test proves nothing")
	}

	// Find a pod whose stitched timeline reaches the journal fsync. The
	// group-commit interval is 10ms, so after placement the fsync-wait
	// span appears almost immediately; poll until one pod has it all.
	var st obs.StitchedTimeline
	deadline := time.Now().Add(30 * time.Second)
	found := false
	for !found && time.Now().Before(deadline) {
		for _, p := range pods {
			resp, err := hc.Get(fmt.Sprintf("%s/v1/debug/pods/%d/timeline", baseC, p.ID))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				continue
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if timelineHasStages(st, obs.StageRoute, obs.StageSubmit, obs.StagePlaced, obs.StageJournalAppend, obs.StageFsyncWait) {
				found = true
				break
			}
		}
		if !found {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !found {
		t.Fatalf("no pod's stitched timeline reached the fsync stage; last: %+v", st)
	}

	// Deterministic trace identity: the trace ID is a pure function of
	// the pod ID, so a re-run with the same seed yields the same trace.
	want := obs.DeriveTraceContext(st.Pod, "coordinator")
	if st.Trace != want.TraceIDString() {
		t.Errorf("stitched trace %q, want derived %q", st.Trace, want.TraceIDString())
	}

	// One trace across all processes, and the partition's events must be
	// parented into the coordinator's span (header propagation worked).
	var coDoc, partDoc *obs.TimelineDoc
	for i := range st.Processes {
		d := &st.Processes[i]
		if d.Trace != st.Trace {
			t.Errorf("process %s trace %q, want %q", d.Process, d.Trace, st.Trace)
		}
		switch {
		case d.Process == "coordinator":
			coDoc = d
		case strings.HasPrefix(d.Process, "partition-"):
			partDoc = d
		}
	}
	if coDoc == nil || partDoc == nil {
		t.Fatalf("stitched timeline missing a side: %+v", st.Processes)
	}
	if partDoc.ParentSpan != coDoc.Span {
		t.Errorf("partition parent span %q, want coordinator span %q", partDoc.ParentSpan, coDoc.Span)
	}
	if !timelineHasStages(obs.StitchedTimeline{Processes: []obs.TimelineDoc{*coDoc}}, obs.StageRoute) {
		t.Error("coordinator doc has no route span")
	}
	for _, stage := range []string{obs.StageSubmit, obs.StageQueueWait, obs.StageSched, obs.StageCommit, obs.StagePlaced, obs.StageJournalAppend, obs.StageFsyncWait} {
		if !timelineHasStages(obs.StitchedTimeline{Processes: []obs.TimelineDoc{*partDoc}}, stage) {
			t.Errorf("partition doc missing stage %q", stage)
		}
	}

	// The Chrome rendering of the same timeline must be valid JSON with
	// per-process metadata and events from at least two distinct pids.
	resp, err := hc.Get(fmt.Sprintf("%s/v1/debug/pods/%d/timeline?format=chrome", baseC, st.Pod))
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	err = json.NewDecoder(resp.Body).Decode(&events)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	meta := 0
	for _, ev := range events {
		if ev["ph"] == "M" {
			meta++
			continue
		}
		if pid, ok := ev["pid"].(float64); ok {
			pids[pid] = true
		}
	}
	if meta == 0 {
		t.Error("chrome export has no metadata events")
	}
	if len(pids) < 2 {
		t.Errorf("chrome export spans %d pids, want >= 2 (coordinator + partition)", len(pids))
	}

	// The flight recorders are on by default: both the coordinator's and
	// a partition's dump endpoints must return parseable documents.
	for _, u := range []string{baseC, base0} {
		resp, err := hc.Get(u + "/v1/debug/flight?window=60s")
		if err != nil {
			t.Fatal(err)
		}
		var dump obs.FlightDump
		err = json.NewDecoder(resp.Body).Decode(&dump)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: flight dump not valid JSON: %v", u, err)
		}
		if len(dump.Events) == 0 {
			t.Errorf("%s: flight dump empty after %d submissions", u, accepted)
		}
	}
}

// timelineHasStages reports whether every named stage appears somewhere
// in the stitched timeline.
func timelineHasStages(st obs.StitchedTimeline, stages ...string) bool {
	have := map[string]bool{}
	for _, d := range st.Processes {
		for _, ev := range d.Events {
			have[ev.Stage] = true
		}
	}
	for _, s := range stages {
		if !have[s] {
			return false
		}
	}
	return true
}
