package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"unisched/internal/federation"
	"unisched/internal/obs"
	"unisched/internal/trace"
)

// startDaemon boots one in-process daemon with the given args on an
// ephemeral port and waits for /readyz.
func startDaemon(t *testing.T, stdout io.Writer, args ...string) (string, chan int, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	codeCh := make(chan int, 1)
	full := append([]string{"-addr", "127.0.0.1:0"}, args...)
	go func() {
		codeCh <- run(ctx, full, stdout, func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never started listening")
	}
	base := "http://" + addr
	hc := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := hc.Get(base + "/readyz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if ok {
				return base, codeCh, cancel
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFederationDaemons boots two partition daemons plus a coordinator
// fronting them over HTTP, replays pods through the coordinator, and
// checks conservation, status lookups, and both Prometheus surfaces.
func TestFederationDaemons(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon boot takes seconds")
	}
	// The same generator arguments every daemon gets, so all three agree
	// on the catalogue.
	cfg := trace.DefaultConfig()
	cfg.Seed = 5
	cfg.NumNodes = 16
	cfg.Horizon = 3600
	w, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pods := w.Pods
	if len(pods) > 300 {
		pods = pods[:300]
	}

	partArgs := []string{
		"-nodes", "16", "-hours", "1", "-seed", "5",
		"-workers", "1", "-queue", "128",
		"-speedup", "30000",
		"-trace-sample", "0",
		"-partition-count", "2",
	}
	var pout0, pout1, cout bytes.Buffer
	base0, code0, cancel0 := startDaemon(t, &pout0, append(partArgs, "-partition-index", "0")...)
	base1, code1, cancel1 := startDaemon(t, &pout1, append(partArgs, "-partition-index", "1")...)
	baseC, codeC, cancelC := startDaemon(t, &cout, "-federation", base0+","+base1)

	hc := &http.Client{Timeout: 5 * time.Second}
	accepted, shed := 0, 0
	for _, p := range pods {
		switch code := post(hc, baseC, p); code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("pod %d: unexpected status %d", p.ID, code)
		}
	}
	if accepted == 0 {
		t.Fatal("no submissions accepted; test proves nothing")
	}

	// Wait for the federation to settle: nothing pending anywhere,
	// including the coordinator's own respill queue.
	var sn federation.Snapshot
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := hc.Get(baseC + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&sn)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if sn.Pending == 0 && sn.QueueDepth == 0 && sn.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("federation never settled: %+v", sn)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if got := int(sn.Submitted); got != accepted {
		t.Errorf("coordinator submitted %d, want %d accepted", got, accepted)
	}
	if lost := sn.Lost(); lost != 0 {
		t.Errorf("federation lost %d submissions: %+v", lost, sn.States)
	}
	if sn.PartitionCount != 2 || len(sn.Partitions) != 2 {
		t.Errorf("snapshot reports %d/%d partitions, want 2", sn.PartitionCount, len(sn.Partitions))
	}

	// A placed pod must be visible through the coordinator's status API.
	var stOK bool
	for _, p := range pods {
		resp, err := hc.Get(fmt.Sprintf("%s/v1/pods/%d", baseC, p.ID))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && strings.Contains(string(body), "phase") {
			stOK = true
			break
		}
	}
	if !stOK {
		t.Error("no pod visible through GET /v1/pods/{id}")
	}

	// Both exposition surfaces must validate: the coordinator's merged
	// page and a partition daemon's own.
	for _, u := range []string{baseC + "/metrics", base0 + "/metrics"} {
		resp, err := hc.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := obs.ValidateExposition(bytes.NewReader(raw)); err != nil {
			t.Errorf("%s: invalid exposition: %v", u, err)
		}
	}
	resp, err := hc.Get(baseC + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "unisched_partition_submitted_total") {
		t.Error("coordinator exposition missing per-partition families")
	}

	// Duplicate resubmission of an accepted pod must 409 through the
	// whole chain (coordinator dedup or partition dedup, either is fine
	// as long as it is not accepted twice).
	if code := post(hc, baseC, pods[0]); code != http.StatusConflict {
		t.Errorf("resubmitting pod %d got %d, want 409", pods[0].ID, code)
	}

	// Coordinator down first (partitions keep running), then partitions.
	cancelC()
	if code := <-codeC; code != 0 {
		t.Fatalf("coordinator exited %d\n%s", code, cout.String())
	}
	if !strings.Contains(cout.String(), `"submitted"`) {
		t.Errorf("coordinator final snapshot missing from stdout:\n%s", cout.String())
	}
	cancel0()
	cancel1()
	if code := <-code0; code != 0 {
		t.Fatalf("partition 0 exited %d", code)
	}
	if code := <-code1; code != 0 {
		t.Fatalf("partition 1 exited %d", code)
	}
}
