package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"unisched/internal/quota"
	"unisched/internal/trace"
)

func writeQuotaFile(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "quota.json")
	cfg := `{
  "admin_token": "admin-secret",
  "default_tenant": "shared",
  "tenants": [
    {"name": "shared", "token": "tok-shared", "guaranteed": {"cpu": 4, "mem": 16}},
    {"name": "prod", "token": "tok-prod", "guaranteed": {"cpu": 8, "mem": 32},
     "max": {"cpu": 16, "mem": 64},
     "queues": [{"name": "web", "guaranteed": {"cpu": 4, "mem": 16}}]}
  ]
}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadQuotaConfig(t *testing.T) {
	path := writeQuotaFile(t, t.TempDir())
	qt, auth, err := loadQuotaConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := qt.Tenants(); len(got) != 2 || got[0] != "prod" || got[1] != "shared" {
		t.Fatalf("tenants = %v", got)
	}
	if _, err := qt.Resolve("prod", "web"); err != nil {
		t.Fatalf("prod/web does not resolve: %v", err)
	}

	check := func(token, wantTenant string, wantAdmin, wantErr bool) {
		t.Helper()
		r := httptest.NewRequest("GET", "/", nil)
		if token != "" {
			r.Header.Set("Authorization", "Bearer "+token)
		}
		tenant, admin, err := auth.authenticate(r)
		if (err != nil) != wantErr || tenant != wantTenant || admin != wantAdmin {
			t.Fatalf("authenticate(%q) = (%q, %v, %v), want (%q, %v, err=%v)",
				token, tenant, admin, err, wantTenant, wantAdmin, wantErr)
		}
	}
	check("admin-secret", "", true, false)
	check("tok-prod", "prod", false, false)
	check("tok-shared", "shared", false, false)
	check("wrong", "", false, true)
	check("", "", false, true)
}

func TestLoadQuotaConfigRejects(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"no-admin":    `{"tenants": [{"name": "a", "token": "x"}]}`,
		"no-token":    `{"admin_token": "a", "tenants": [{"name": "a"}]}`,
		"admin-reuse": `{"admin_token": "a", "tenants": [{"name": "t", "token": "a"}]}`,
		"bad-quota":   `{"admin_token": "a", "tenants": [{"name": "t", "token": "x", "guaranteed": {"cpu": 4}, "max": {"cpu": 2}}]}`,
	} {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := loadQuotaConfig(path); err == nil {
			t.Errorf("%s: load succeeded, want error", name)
		}
	}
}

// do issues one request with a bearer token and returns status + body.
func do(t *testing.T, hc *http.Client, method, url, token string, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestRunMultiTenant boots the daemon with a quota file and drives the
// whole multi-tenant surface end to end: token-gated submission with
// attribution override, the /v1/quotas CRUD (401/403/409 paths included),
// per-tenant /metrics series, and CRUD durability across a restart.
func TestRunMultiTenant(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon cycle takes seconds")
	}
	dir := t.TempDir()
	qpath := writeQuotaFile(t, dir)
	dataDir := filepath.Join(dir, "data")

	var out1 bytes.Buffer
	base, codeCh, cancel := startRun(t, dataDir, &out1, "-quota", qpath)
	hc := &http.Client{Timeout: 5 * time.Second}

	// Unauthenticated: submission and quota reads both 401.
	if code, _ := do(t, hc, "POST", base+"/v1/pods", "", `{"id": -1}`); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated submit = %d, want 401", code)
	}
	if code, _ := do(t, hc, "GET", base+"/v1/quotas", "", ""); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated quota read = %d, want 401", code)
	}

	// A tenant token submits; the spec's claimed tenant is overridden by
	// the token's. The pod spec comes from the same catalogue the daemon
	// generated (same seed/nodes/horizon), so linking succeeds.
	wcfg := trace.DefaultConfig()
	wcfg.Seed = 3
	wcfg.NumNodes = 8
	wcfg.Horizon = 3600
	w, err := trace.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := *w.Pods[0]
	spec.ID = 9_000_001
	spec.Tenant = "shared" // the token must override this claim
	specJSON, _ := json.Marshal(&spec)
	code, body := do(t, hc, "POST", base+"/v1/pods", "tok-prod", string(specJSON))
	if code != http.StatusAccepted {
		t.Fatalf("tenant submit = %d (%s), want 202", code, body)
	}

	// The snapshot must show the admission charged to prod (the token's
	// tenant), not shared (the spec's claim).
	code, body = do(t, hc, "GET", base+"/v1/quotas", "tok-shared", "")
	if code != http.StatusOK {
		t.Fatalf("quota read = %d, want 200", code)
	}
	var snap quota.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	var prodAdmitted, sharedAdmitted float64
	for _, tn := range snap.Root.Children {
		switch tn.Name {
		case "prod":
			prodAdmitted = tn.Admitted.CPU
		case "shared":
			sharedAdmitted = tn.Admitted.CPU
		}
	}
	if prodAdmitted != spec.Request.CPU || sharedAdmitted != 0 {
		t.Fatalf("admitted cpu: prod=%v shared=%v, want prod=%v shared=0 (token must override spec)",
			prodAdmitted, sharedAdmitted, spec.Request.CPU)
	}

	// CRUD is admin-only.
	newTenant := `{"guaranteed": {"cpu": 2, "mem": 8}, "max": {"cpu": 4, "mem": 16}}`
	if code, _ := do(t, hc, "PUT", base+"/v1/quotas/batchco", "tok-prod", newTenant); code != http.StatusForbidden {
		t.Fatalf("tenant-token PUT = %d, want 403", code)
	}
	if code, body := do(t, hc, "PUT", base+"/v1/quotas/batchco", "admin-secret", newTenant); code != http.StatusOK {
		t.Fatalf("admin PUT = %d (%s), want 200", code, body)
	}
	// Deleting a tenant with admitted usage conflicts; deleting the fresh
	// one succeeds.
	if code, _ := do(t, hc, "DELETE", base+"/v1/quotas/prod", "admin-secret", ""); code != http.StatusConflict {
		t.Fatalf("DELETE in-use tenant = %d, want 409", code)
	}
	if code, _ := do(t, hc, "DELETE", base+"/v1/quotas/batchco", "tok-shared", ""); code != http.StatusForbidden {
		t.Fatalf("tenant-token DELETE = %d, want 403", code)
	}
	// Re-create batchco so the restart check below can find it.
	if code, _ := do(t, hc, "PUT", base+"/v1/quotas/batchco", "admin-secret", newTenant); code != http.StatusOK {
		t.Fatal("re-create batchco failed")
	}

	// /metrics carries per-tenant series.
	code, body = do(t, hc, "GET", base+"/metrics", "", "")
	if code != http.StatusOK || !strings.Contains(body, `unisched_tenant_guaranteed_cpu{tenant="prod"}`) {
		t.Fatalf("/metrics lacks per-tenant series (code %d)", code)
	}

	cancel()
	select {
	case c := <-codeCh:
		if c != 0 {
			t.Fatalf("run exited %d", c)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit")
	}

	// Restart on the same data dir: the journaled tree (with batchco) must
	// win over the quota file (without it).
	var out2 bytes.Buffer
	base2, codeCh2, cancel2 := startRun(t, dataDir, &out2, "-quota", qpath)
	code, body = do(t, hc, "GET", base2+"/v1/quotas", "admin-secret", "")
	if code != http.StatusOK || !strings.Contains(body, `"batchco"`) {
		t.Fatalf("restart lost the journaled tenant batchco (code %d):\n%s", code, body)
	}
	cancel2()
	select {
	case c := <-codeCh2:
		if c != 0 {
			t.Fatalf("second run exited %d", c)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("second run did not exit")
	}
}
