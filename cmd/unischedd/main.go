// Command unischedd is the online scheduling service: the engine behind a
// stdlib net/http JSON API. It generates (or loads) a workload for its
// application catalogue and node fleet, starts N parallel scheduler
// workers over the sharded cluster store, and accepts pod submissions
// until shut down.
//
// Usage:
//
//	unischedd -addr :8080 -nodes 200 -hours 24 -seed 1 -workers 4
//	unischedd -trace trace.json -scheduler optum -speedup 120
//	unischedd -debug-addr localhost:6060   # live pprof at /debug/pprof/
//
// API:
//
//	GET  /healthz           liveness
//	POST /v1/pods           submit one pod (JSON trace.Pod)
//	GET  /v1/pods/{id}      submission status
//	GET  /v1/nodes          all node states
//	GET  /v1/nodes/{id}     one node state
//	GET  /v1/metrics        engine metrics snapshot (JSON)
//
// SIGTERM/SIGINT shut the server down gracefully: the listener closes,
// in-flight requests finish, the engine stops, and the final metrics
// snapshot is printed to stdout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr mux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"unisched/internal/chaos"
	"unisched/internal/cluster"
	"unisched/internal/core"
	"unisched/internal/engine"
	"unisched/internal/profiler"
	"unisched/internal/sched"
	"unisched/internal/sim"
	"unisched/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("unischedd: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		nodes     = flag.Int("nodes", 200, "number of hosts (ignored with -trace)")
		hours     = flag.Int("hours", 24, "application-catalogue horizon in hours (ignored with -trace)")
		seed      = flag.Int64("seed", 1, "seed")
		tracePath = flag.String("trace", "", "load the workload catalogue from JSON instead of generating")
		schedName = flag.String("scheduler", "alibaba",
			"scheduler: optum | alibaba | borg | nsigma | rc | medea | kube")
		workers   = flag.Int("workers", 4, "parallel scheduler workers")
		shards    = flag.Int("shards", 16, "cluster-state store shards")
		queueCap  = flag.Int("queue", 8192, "admission queue capacity")
		speedup   = flag.Float64("speedup", 120, "virtual-clock speedup over wall time")
		chaosRun  = flag.Bool("chaos", false, "inject node churn (default stochastic rates)")
		partition = flag.Bool("partition", true, "give each worker a disjoint node partition")
		debugAddr = flag.String("debug-addr", "",
			"serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
	)
	flag.Parse()

	if *debugAddr != "" {
		// The profiling endpoint lives on its own listener so it is never
		// exposed on the service address; http.DefaultServeMux carries the
		// /debug/pprof handlers registered by the net/http/pprof import.
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	w, err := loadWorkload(*tracePath, *nodes, *hours, *seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("catalogue: %d nodes, %d apps, %dh horizon", len(w.Nodes), len(w.Apps), w.Horizon/3600)

	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	factory, err := makeFactory(*schedName, w, *seed)
	if err != nil {
		log.Fatal(err)
	}

	cfg := engine.Config{
		Workers:        *workers,
		Shards:         *shards,
		QueueCap:       *queueCap,
		TickWall:       time.Duration(float64(trace.SampleInterval) * float64(time.Second) / *speedup),
		PartitionNodes: *partition,
		Seed:           *seed,
	}
	if *chaosRun {
		cfg.Chaos = chaos.NewInjector(*seed, nil, chaos.DefaultRates())
	}
	e := engine.New(c, factory, cfg)
	e.Start()
	log.Printf("engine: %d workers, %d shards, queue %d, tick %v (%gx), scheduler %s",
		cfg.Workers, cfg.Shards, cfg.QueueCap, cfg.TickWall, *speedup, *schedName)

	srv := &http.Server{Addr: *addr, Handler: newAPI(e, w)}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case <-ctx.Done():
		log.Print("signal received, shutting down")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	e.Stop()

	enc, _ := json.MarshalIndent(e.Snapshot(), "", "  ")
	os.Stdout.Write(append(enc, '\n'))
}

func loadWorkload(path string, nodes, hours int, seed int64) (*trace.Workload, error) {
	if path != "" {
		return trace.LoadFile(path)
	}
	cfg := trace.DefaultConfig()
	cfg.Seed = seed
	cfg.NumNodes = nodes
	cfg.Horizon = int64(hours) * 3600
	return trace.Generate(cfg)
}

// makeFactory builds the per-worker scheduler constructor. Optum first
// needs an offline profiling pass under the production baseline, exactly
// like cmd/optumsim.
func makeFactory(name string, w *trace.Workload, seed int64) (engine.SchedulerFactory, error) {
	switch strings.ToLower(name) {
	case "optum":
		log.Print("profiling (offline pass under the production baseline)...")
		col := profiler.NewCollector(seed)
		warm := cluster.New(w.Nodes, cluster.DefaultPhysics())
		sim.Run(w, warm, sched.NewAlibabaLike(warm, seed), sim.Config{Collector: col})
		models, err := col.TrainInterference(profiler.DefaultFactory(), 0.25)
		if err != nil {
			return nil, err
		}
		prof := core.Profiles{ERO: col.ERO(), Stats: col.Stats(), Models: models}
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return core.New(c, prof, core.DefaultOptions(), s)
		}, nil
	case "alibaba":
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return sched.NewAlibabaLike(c, s)
		}, nil
	case "borg":
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return sched.NewBorgLike(c, s)
		}, nil
	case "nsigma":
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return sched.NewNSigma(c, s)
		}, nil
	case "rc":
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return sched.NewRCLike(c, s)
		}, nil
	case "medea":
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return sched.NewMedea(c, s)
		}, nil
	case "kube":
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return sched.NewKubeLike(c, s)
		}, nil
	}
	return nil, fmt.Errorf("unknown scheduler %q", name)
}

// api is the HTTP surface over one engine.
type api struct {
	e *engine.Engine
	w *trace.Workload
	// nextID assigns IDs to submissions that arrive without one.
	nextID atomic.Int64
}

func newAPI(e *engine.Engine, w *trace.Workload) http.Handler {
	a := &api{e: e, w: w}
	max := int64(0)
	for _, p := range w.Pods {
		if int64(p.ID) >= max {
			max = int64(p.ID)
		}
	}
	a.nextID.Store(max + 1_000_000)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Write([]byte("ok\n"))
	})
	mux.HandleFunc("POST /v1/pods", a.submitPod)
	mux.HandleFunc("GET /v1/pods/{id}", a.getPod)
	mux.HandleFunc("GET /v1/nodes", a.getNodes)
	mux.HandleFunc("GET /v1/nodes/{id}", a.getNode)
	mux.HandleFunc("GET /v1/metrics", a.getMetrics)
	return mux
}

// submitResponse is the POST /v1/pods reply.
type submitResponse struct {
	ID     int    `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func (a *api) submitPod(rw http.ResponseWriter, r *http.Request) {
	var p trace.Pod
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		writeJSON(rw, http.StatusBadRequest, submitResponse{Status: "rejected", Error: err.Error()})
		return
	}
	if p.ID < 0 {
		p.ID = int(a.nextID.Add(1))
	}
	if p.CPUScale == 0 {
		p.CPUScale = 1
	}
	if p.MemScale == 0 {
		p.MemScale = 1
	}
	if err := a.w.LinkPod(&p); err != nil {
		writeJSON(rw, http.StatusBadRequest, submitResponse{ID: p.ID, Status: "rejected", Error: err.Error()})
		return
	}
	switch err := a.e.Submit(&p); {
	case err == nil:
		writeJSON(rw, http.StatusAccepted, submitResponse{ID: p.ID, Status: "queued"})
	case errors.Is(err, engine.ErrQueueFull):
		writeJSON(rw, http.StatusTooManyRequests, submitResponse{ID: p.ID, Status: "shed", Error: err.Error()})
	case errors.Is(err, engine.ErrDuplicate):
		writeJSON(rw, http.StatusConflict, submitResponse{ID: p.ID, Status: "duplicate", Error: err.Error()})
	default:
		writeJSON(rw, http.StatusServiceUnavailable, submitResponse{ID: p.ID, Status: "rejected", Error: err.Error()})
	}
}

func (a *api) getPod(rw http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(rw, "bad pod id", http.StatusBadRequest)
		return
	}
	st, ok := a.e.PodStatus(id)
	if !ok {
		http.Error(rw, "unknown pod", http.StatusNotFound)
		return
	}
	writeJSON(rw, http.StatusOK, st)
}

func (a *api) getNodes(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, a.e.NodeStatuses())
}

func (a *api) getNode(rw http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(rw, "bad node id", http.StatusBadRequest)
		return
	}
	st, ok := a.e.NodeStatus(id)
	if !ok {
		http.Error(rw, "unknown node", http.StatusNotFound)
		return
	}
	writeJSON(rw, http.StatusOK, st)
}

func (a *api) getMetrics(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, a.e.Snapshot())
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
