// Command unischedd is the online scheduling service: the engine behind a
// stdlib net/http JSON API. It generates (or loads) a workload for its
// application catalogue and node fleet, starts N parallel scheduler
// workers over the sharded cluster store, and accepts pod submissions
// until shut down.
//
// Usage:
//
//	unischedd -addr :8080 -nodes 200 -hours 24 -seed 1 -workers 4
//	unischedd -trace trace.json -scheduler optum -speedup 120
//	unischedd -log-format json -trace-sample 1
//	unischedd -data-dir /var/lib/unischedd   # durable: journal + checkpoints
//	unischedd -debug-addr localhost:6060     # live pprof at /debug/pprof/
//
// API:
//
//	GET  /healthz                   liveness
//	GET  /readyz                    readiness (503 until recovery finishes
//	                                and workers run, and again once
//	                                shutdown begins)
//	GET  /metrics                   Prometheus text exposition
//	POST /v1/pods                   submit one pod (JSON trace.Pod)
//	GET  /v1/pods/{id}              submission status
//	GET  /v1/nodes                  all node states
//	GET  /v1/nodes/{id}             one node state
//	GET  /v1/metrics                engine metrics snapshot (JSON)
//	GET  /v1/metrics/history        rolling cluster-utilization ring
//	GET  /v1/debug/decisions        sampled decision traces (?last=N,
//	                                ?outcome=placed|failed|...)
//	GET  /v1/debug/decisions/{id}   traces for one pod
//	GET  /v1/debug/pods/{id}/timeline
//	                                lifecycle timeline for one sampled pod
//	                                (?format=chrome for a Chrome trace); on
//	                                a coordinator, the stitched cross-
//	                                process timeline
//	GET  /v1/debug/flight           flight-recorder dump of the last
//	                                -flight-window of lifecycle events
//	GET  /v1/quotas                 quota-tree snapshot (any valid token)
//	PUT  /v1/quotas/{tenant}        create/update a tenant quota (admin)
//	DELETE /v1/quotas/{tenant}      delete a drained tenant quota (admin)
//
// With -quota FILE the daemon runs multi-tenant: the file declares an
// admin token plus per-tenant bearer tokens and quota caps, POST /v1/pods
// requires a token (the token decides the tenant attribution), the quota
// CRUD endpoints require the admin token, and /metrics gains per-tenant
// series. Quota changes made through the API are journaled (with
// -data-dir), so a restart restores the edited tree, not the file.
//
// With -data-dir set the engine runs durably: every admission, placement,
// and removal is journaled before it is acknowledged, checkpoints are cut
// periodically, and a restart recovers the pre-crash state (the boot line
// `recovered_state_hash=` and the shutdown line `final_state_hash=` on
// stdout let operators verify recovery end to end).
//
// SIGTERM/SIGINT shut the server down gracefully: /readyz flips to 503,
// the listener closes, in-flight requests finish, the engine stops — with
// -data-dir it cuts a final checkpoint — and the final metrics snapshot is
// printed to stdout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr mux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"unisched/internal/chaos"
	"unisched/internal/cluster"
	"unisched/internal/core"
	"unisched/internal/engine"
	"unisched/internal/obs"
	"unisched/internal/profiler"
	"unisched/internal/quota"
	"unisched/internal/sched"
	"unisched/internal/sim"
	"unisched/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, nil))
}

// run is the whole daemon, factored out of main so tests can drive a full
// boot/serve/drain cycle in-process: ctx cancellation is the SIGTERM
// equivalent, stdout receives the state-hash lines and the final snapshot,
// and onListen (optional) gets the bound address once the listener is up.
func run(ctx context.Context, args []string, stdout io.Writer, onListen func(addr string)) int {
	fs := flag.NewFlagSet("unischedd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		nodes     = fs.Int("nodes", 200, "number of hosts (ignored with -trace)")
		hours     = fs.Int("hours", 24, "application-catalogue horizon in hours (ignored with -trace)")
		seed      = fs.Int64("seed", 1, "seed")
		tracePath = fs.String("trace", "", "load the workload catalogue from JSON instead of generating")
		schedName = fs.String("scheduler", "alibaba",
			"scheduler: optum | alibaba | borg | nsigma | rc | medea | kube")
		workers   = fs.Int("workers", 4, "parallel scheduler workers")
		shards    = fs.Int("shards", 16, "cluster-state store shards")
		queueCap  = fs.Int("queue", 8192, "admission queue capacity")
		speedup   = fs.Float64("speedup", 120, "virtual-clock speedup over wall time")
		chaosRun  = fs.Bool("chaos", false, "inject node churn (default stochastic rates)")
		partition = fs.Bool("partition", true, "give each worker a disjoint node partition")
		logFormat = fs.String("log-format", "text", "log output format: text | json")
		traceN    = fs.Int("trace-sample", 16, "record every Nth placement decision (0 disables tracing)")
		traceBuf  = fs.Int("trace-buf", 4096, "decision-trace ring capacity")
		lcSample  = fs.Int("lifecycle-sample", 0,
			"record the full lifecycle timeline of pods whose ID is a multiple of N (0 keeps only the flight ring)")
		lcBuf = fs.Int("lifecycle-buffer", 8192,
			"lifecycle flight-recorder ring capacity (0 disables lifecycle tracing entirely)")
		flightWin = fs.Duration("flight-window", 10*time.Second,
			"trailing window of lifecycle events an anomaly flight dump captures")
		dataDir = fs.String("data-dir", "",
			"durability directory for the placement journal and checkpoints; empty disables durability")
		ckptEvery = fs.Int("checkpoint-every", 120, "checkpoint every N virtual ticks (with -data-dir)")
		fsyncEvry = fs.Duration("fsync-every", 10*time.Millisecond, "journal group-commit interval (with -data-dir)")
		debugAddr = fs.String("debug-addr", "",
			"serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
		quotaPath = fs.String("quota", "",
			"multi-tenant quota file (admin token, tenants with tokens and caps); empty runs single-tenant and open")
		partIndex = fs.Int("partition-index", -1,
			"this daemon's shard index under a federation coordinator (with -partition-count)")
		partCount = fs.Int("partition-count", 0,
			"total federation shards; > 0 restricts the engine to its BlockAssign shard and serves /v1/federation/*")
		fedURLs = fs.String("federation", "",
			"comma-separated partition daemon URLs; runs as the federation coordinator instead of an engine")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unischedd:", err)
		return 2
	}

	if *fedURLs != "" {
		return runCoordinator(ctx, strings.Split(*fedURLs, ","), *addr, *lcSample, *lcBuf, logger, stdout, onListen)
	}
	if *partCount > 0 && (*partIndex < 0 || *partIndex >= *partCount) {
		fmt.Fprintf(os.Stderr, "unischedd: -partition-index %d out of range for -partition-count %d\n", *partIndex, *partCount)
		return 2
	}

	if *debugAddr != "" {
		// The profiling endpoint lives on its own listener so it is never
		// exposed on the service address; http.DefaultServeMux carries the
		// /debug/pprof handlers registered by the net/http/pprof import.
		go func() {
			logger.Info("pprof listening", "url", "http://"+*debugAddr+"/debug/pprof/")
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.Warn("pprof listener failed", "err", err)
			}
		}()
	}

	w, err := loadWorkload(*tracePath, *nodes, *hours, *seed)
	if err != nil {
		logger.Error("workload load failed", "err", err)
		return 1
	}
	logger.Info("catalogue loaded",
		"nodes", len(w.Nodes), "apps", len(w.Apps), "horizon_h", w.Horizon/3600)

	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	factory, err := makeFactory(*schedName, w, *seed, logger)
	if err != nil {
		logger.Error("scheduler construction failed", "err", err)
		return 1
	}

	cfg := engine.Config{
		Workers:         *workers,
		Shards:          *shards,
		QueueCap:        *queueCap,
		TickWall:        time.Duration(float64(trace.SampleInterval) * float64(time.Second) / *speedup),
		PartitionNodes:  *partition,
		Seed:            *seed,
		TraceEvery:      *traceN,
		TraceBuffer:     *traceBuf,
		LifecycleEvery:  *lcSample,
		LifecycleBuffer: *lcBuf,
		FlightWindow:    *flightWin,
		Logger:          logger,
	}
	if *partCount > 0 {
		cfg.LifecycleRole = fmt.Sprintf("partition-%d", *partIndex)
	}
	if *chaosRun {
		cfg.Chaos = chaos.NewInjector(*seed, nil, chaos.DefaultRates())
	}
	var ring *rejectRing
	if *partCount > 0 {
		mask, owned := partitionMask(len(w.Nodes), *partIndex, *partCount)
		cfg.InactiveNodes = mask
		cfg.BlockShards = true
		ring = newRejectRing(1 << 16)
		cfg.OnUnschedulable = ring.record
		logger.Info("partition mode",
			"index", *partIndex, "count", *partCount,
			"owned_nodes", owned, "fleet", len(w.Nodes))
	}
	var auth *tenantAuth
	if *quotaPath != "" {
		qt, a, err := loadQuotaConfig(*quotaPath)
		if err != nil {
			logger.Error("quota config load failed", "err", err)
			return 1
		}
		cfg.Quota = qt
		auth = a
		logger.Info("multi-tenant mode", "tenants", qt.Tenants(), "config_hash", qt.ConfigHash())
	}

	// ready gates /readyz: false until recovery finishes and the workers
	// run, false again the moment shutdown starts so load balancers drain
	// us before the listener closes.
	var ready atomic.Bool
	durable := *dataDir != ""
	var e *engine.Engine
	if durable {
		cfg.DataDir = *dataDir
		cfg.CheckpointEvery = *ckptEvery
		cfg.FsyncEvery = *fsyncEvry
		var rs *engine.RecoveryStats
		e, rs, err = engine.OpenDurable(c, factory, cfg, w.LinkPod)
		if err != nil {
			logger.Error("recovery failed", "err", err, "data_dir", *dataDir)
			return 1
		}
		fmt.Fprintf(stdout, "recovered_state_hash=%s\n", rs.StateHash)
	} else {
		e = engine.New(c, factory, cfg)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "err", err, "addr", *addr)
		return 1
	}
	handler := newAPI(e, w, &ready, auth)
	if ring != nil {
		handler = withFederationEndpoints(handler, e, ring)
	}
	srv := &http.Server{Handler: logRequests(logger, handler)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	if onListen != nil {
		onListen(ln.Addr().String())
	}

	e.Start()
	ready.Store(true)
	logger.Info("listening", "addr", ln.Addr().String(), "scheduler", *schedName,
		"speedup", *speedup, "trace_sample", *traceN, "durable", durable)

	select {
	case <-ctx.Done():
		logger.Info("signal received, shutting down")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("http server failed", "err", err)
			return 1
		}
	}
	ready.Store(false) // flip readiness before the listener closes
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown incomplete", "err", err)
	}
	// Stop drains the workers and, on a durable engine, cuts the final
	// checkpoint before closing the journal — everything admitted by the
	// requests that just finished is committed or journaled.
	e.Stop()

	if durable {
		fmt.Fprintf(stdout, "final_state_hash=%s\n", e.StateHash())
	}
	enc, _ := json.MarshalIndent(e.Snapshot(), "", "  ")
	stdout.Write(append(enc, '\n'))
	return 0
}

// newLogger builds the process logger for -log-format.
func newLogger(format string) (*slog.Logger, error) {
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

func loadWorkload(path string, nodes, hours int, seed int64) (*trace.Workload, error) {
	if path != "" {
		return trace.LoadFile(path)
	}
	cfg := trace.DefaultConfig()
	cfg.Seed = seed
	cfg.NumNodes = nodes
	cfg.Horizon = int64(hours) * 3600
	return trace.Generate(cfg)
}

// makeFactory builds the per-worker scheduler constructor. Optum first
// needs an offline profiling pass under the production baseline, exactly
// like cmd/optumsim.
func makeFactory(name string, w *trace.Workload, seed int64, logger *slog.Logger) (engine.SchedulerFactory, error) {
	switch strings.ToLower(name) {
	case "optum":
		logger.Info("profiling (offline pass under the production baseline)")
		col := profiler.NewCollector(seed)
		warm := cluster.New(w.Nodes, cluster.DefaultPhysics())
		sim.Run(w, warm, sched.NewAlibabaLike(warm, seed), sim.Config{Collector: col})
		models, err := col.TrainInterference(profiler.DefaultFactory(), 0.25)
		if err != nil {
			return nil, err
		}
		prof := core.Profiles{ERO: col.ERO(), Stats: col.Stats(), Models: models}
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return core.New(c, prof, core.DefaultOptions(), s)
		}, nil
	case "alibaba":
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return sched.NewAlibabaLike(c, s)
		}, nil
	case "borg":
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return sched.NewBorgLike(c, s)
		}, nil
	case "nsigma":
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return sched.NewNSigma(c, s)
		}, nil
	case "rc":
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return sched.NewRCLike(c, s)
		}, nil
	case "medea":
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return sched.NewMedea(c, s)
		}, nil
	case "kube":
		return func(c *cluster.Cluster, worker int, s int64) sched.Scheduler {
			return sched.NewKubeLike(c, s)
		}, nil
	}
	return nil, fmt.Errorf("unknown scheduler %q", name)
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// logRequests wraps the API with structured per-request logging.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: rw, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		logger.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "dur_ms", float64(time.Since(t0).Microseconds())/1000)
	})
}

// api is the HTTP surface over one engine.
type api struct {
	e     *engine.Engine
	w     *trace.Workload
	ready *atomic.Bool
	// auth is the bearer-token authenticator; nil in single-tenant open
	// mode.
	auth *tenantAuth
	// nextID assigns IDs to submissions that arrive without one.
	nextID atomic.Int64
}

func newAPI(e *engine.Engine, w *trace.Workload, ready *atomic.Bool, auth *tenantAuth) http.Handler {
	a := &api{e: e, w: w, ready: ready, auth: auth}
	max := int64(0)
	for _, p := range w.Pods {
		if int64(p.ID) >= max {
			max = int64(p.ID)
		}
	}
	a.nextID.Store(max + 1_000_000)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", a.getReady)
	mux.Handle("GET /metrics", e.MetricsHandler())
	mux.HandleFunc("POST /v1/pods", a.submitPod)
	mux.HandleFunc("GET /v1/pods/{id}", a.getPod)
	mux.HandleFunc("GET /v1/nodes", a.getNodes)
	mux.HandleFunc("GET /v1/nodes/{id}", a.getNode)
	mux.HandleFunc("GET /v1/metrics", a.getMetrics)
	mux.HandleFunc("GET /v1/metrics/history", a.getHistory)
	mux.HandleFunc("GET /v1/debug/decisions", a.getDecisions)
	mux.HandleFunc("GET /v1/debug/decisions/{id}", a.getPodDecisions)
	mux.HandleFunc("GET /v1/debug/pods/{id}/timeline", a.getPodTimeline)
	mux.HandleFunc("GET /v1/debug/flight", a.getFlight)
	mux.HandleFunc("GET /v1/quotas", a.getQuotas)
	mux.HandleFunc("PUT /v1/quotas/{tenant}", a.putQuota)
	mux.HandleFunc("DELETE /v1/quotas/{tenant}", a.deleteQuota)
	return mux
}

func (a *api) getReady(rw http.ResponseWriter, _ *http.Request) {
	if a.ready != nil && a.ready.Load() {
		rw.Write([]byte("ok\n"))
		return
	}
	http.Error(rw, "not ready", http.StatusServiceUnavailable)
}

// submitResponse is the POST /v1/pods reply.
type submitResponse struct {
	ID     int    `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func (a *api) submitPod(rw http.ResponseWriter, r *http.Request) {
	tenant, admin, ok := a.requireAuth(rw, r)
	if !ok {
		return
	}
	var p trace.Pod
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		writeJSON(rw, http.StatusBadRequest, submitResponse{Status: "rejected", Error: err.Error()})
		return
	}
	if a.auth != nil && !admin {
		// The token decides the tenant: a spec claiming another tenant is
		// overridden, never trusted. Admin submissions keep the spec's
		// attribution (loadgen's adversarial mode uses this).
		p.Tenant = tenant
	}
	if p.ID < 0 {
		p.ID = int(a.nextID.Add(1))
	}
	if p.CPUScale == 0 {
		p.CPUScale = 1
	}
	if p.MemScale == 0 {
		p.MemScale = 1
	}
	if err := a.w.LinkPod(&p); err != nil {
		writeJSON(rw, http.StatusBadRequest, submitResponse{ID: p.ID, Status: "rejected", Error: err.Error()})
		return
	}
	// Adopt the caller's W3C-style trace context before the submission
	// records any lifecycle event, so a sampled pod's local spans join the
	// coordinator's trace (a nil lifecycle recorder ignores this).
	if tp := r.Header.Get(obs.TraceParentHeader); tp != "" {
		if tc, ok := obs.ParseTraceParent(tp); ok {
			a.e.Lifecycle().SetContext(int64(p.ID), tc)
		}
	}
	switch err := a.e.Submit(&p); {
	case err == nil:
		writeJSON(rw, http.StatusAccepted, submitResponse{ID: p.ID, Status: "queued"})
	case errors.Is(err, engine.ErrQueueFull):
		writeJSON(rw, http.StatusTooManyRequests, submitResponse{ID: p.ID, Status: "shed", Error: err.Error()})
	case errors.Is(err, quota.ErrOverMax):
		writeJSON(rw, http.StatusTooManyRequests, submitResponse{ID: p.ID, Status: "shed", Error: err.Error()})
	case errors.Is(err, quota.ErrUnknownTenant), errors.Is(err, quota.ErrUnknownQueue):
		writeJSON(rw, http.StatusBadRequest, submitResponse{ID: p.ID, Status: "rejected", Error: err.Error()})
	case errors.Is(err, engine.ErrDuplicate):
		writeJSON(rw, http.StatusConflict, submitResponse{ID: p.ID, Status: "duplicate", Error: err.Error()})
	default:
		writeJSON(rw, http.StatusServiceUnavailable, submitResponse{ID: p.ID, Status: "rejected", Error: err.Error()})
	}
}

func (a *api) getPod(rw http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(rw, "bad pod id", http.StatusBadRequest)
		return
	}
	st, ok := a.e.PodStatus(id)
	if !ok {
		http.Error(rw, "unknown pod", http.StatusNotFound)
		return
	}
	writeJSON(rw, http.StatusOK, st)
}

func (a *api) getNodes(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, a.e.NodeStatuses())
}

func (a *api) getNode(rw http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(rw, "bad node id", http.StatusBadRequest)
		return
	}
	st, ok := a.e.NodeStatus(id)
	if !ok {
		http.Error(rw, "unknown node", http.StatusNotFound)
		return
	}
	writeJSON(rw, http.StatusOK, st)
}

func (a *api) getMetrics(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, a.e.Snapshot())
}

// historyResponse is the GET /v1/metrics/history reply.
type historyResponse struct {
	Interval int64             `json:"interval_s"`
	Count    int               `json:"count"`
	Samples  []obs.SamplePoint `json:"samples"`
}

func (a *api) getHistory(rw http.ResponseWriter, _ *http.Request) {
	samples := a.e.History().Samples()
	writeJSON(rw, http.StatusOK, historyResponse{
		Interval: trace.SampleInterval,
		Count:    len(samples),
		Samples:  samples,
	})
}

// decisionsResponse is the GET /v1/debug/decisions reply.
type decisionsResponse struct {
	Enabled   bool  `json:"enabled"`
	Started   int64 `json:"started"`
	Committed int64 `json:"committed"`
	Count     int   `json:"count"`
	Traces    any   `json:"traces"`
}

func (a *api) getDecisions(rw http.ResponseWriter, r *http.Request) {
	rec := a.e.Traces()
	n := 20
	if s := r.URL.Query().Get("last"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(rw, "bad last= value", http.StatusBadRequest)
			return
		}
		n = v
	}
	traces := rec.Last(n, r.URL.Query().Get("outcome"))
	started, committed := rec.Counts()
	writeJSON(rw, http.StatusOK, decisionsResponse{
		Enabled:   rec.Enabled(),
		Started:   started,
		Committed: committed,
		Count:     len(traces),
		Traces:    traces,
	})
}

func (a *api) getPodDecisions(rw http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(rw, "bad pod id", http.StatusBadRequest)
		return
	}
	traces := a.e.Traces().ByPod(id)
	if len(traces) == 0 {
		http.Error(rw, "no traces for pod (not sampled, evicted, or tracing off)", http.StatusNotFound)
		return
	}
	writeJSON(rw, http.StatusOK, traces)
}

// getPodTimeline serves one sampled pod's lifecycle timeline. The reply
// is a StitchedTimeline with this process as its only participant, the
// same shape the federation coordinator returns after merging partition
// timelines, so clients parse both identically. ?format=chrome renders
// the timeline as a Chrome trace instead.
func (a *api) getPodTimeline(rw http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(rw, "bad pod id", http.StatusBadRequest)
		return
	}
	lc := a.e.Lifecycle()
	if lc == nil {
		http.Error(rw, "lifecycle tracing off (start with -lifecycle-sample)", http.StatusNotFound)
		return
	}
	doc, ok := lc.TimelineDoc(id)
	if !ok {
		http.Error(rw, "no timeline for pod (not sampled or evicted)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		rw.Header().Set("Content-Type", "application/json")
		obs.WriteMergedChromeTrace(rw, []obs.TimelineDoc{doc})
		return
	}
	writeJSON(rw, http.StatusOK, obs.StitchedTimeline{
		Pod:       id,
		Trace:     doc.Trace,
		Processes: []obs.TimelineDoc{doc},
	})
}

// getFlight dumps the flight recorder's recent lifecycle events — the
// same JSON document an anomaly trip writes to the data dir. ?window=
// overrides the 10s default lookback.
func (a *api) getFlight(rw http.ResponseWriter, r *http.Request) {
	lc := a.e.Lifecycle()
	if lc == nil {
		http.Error(rw, "lifecycle tracing off (start with -lifecycle-sample or -lifecycle-buffer)", http.StatusNotFound)
		return
	}
	window := 10 * time.Second
	if s := r.URL.Query().Get("window"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			http.Error(rw, "bad window= value", http.StatusBadRequest)
			return
		}
		window = d
	}
	rw.Header().Set("Content-Type", "application/json")
	lc.WriteFlight(rw, window, "debug-endpoint", "")
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
