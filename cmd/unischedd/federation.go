// Federation modes of unischedd.
//
// Partition mode (-partition-index I -partition-count N) runs the normal
// engine daemon restricted to its shard of the node fleet: every node
// outside the shard is Down from genesis (the same federation.BlockAssign
// map a coordinator uses), and two extra endpoints feed the coordinator:
//
//	GET /v1/federation/digest         routing digest (engine.Digest)
//	GET /v1/federation/rejects?after=SEQ  fail-fast rejects past the cursor
//
// Coordinator mode (-federation URL,URL,...) runs no engine at all: it
// fronts already-running partition daemons, routing POST /v1/pods by
// digest fit, re-dispatching spillover from the partitions' reject
// cursors, and serving merged metrics:
//
//	GET  /healthz, /readyz
//	GET  /metrics        merged Prometheus exposition (per-partition labels)
//	POST /v1/pods        submit one pod (routed to the best-fit partition)
//	GET  /v1/pods/{id}   federation-wide submission status
//	GET  /v1/metrics     merged JSON snapshot (loadgen-compatible)
//	GET  /v1/debug/pods/{id}/timeline  stitched cross-process lifecycle
//	                     timeline (coordinator route spans + every
//	                     partition's stages; ?format=chrome)
//	GET  /v1/debug/flight  coordinator flight-recorder dump
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"unisched/internal/engine"
	"unisched/internal/federation"
	"unisched/internal/obs"
	"unisched/internal/sched"
	"unisched/internal/trace"
)

// rejectRing buffers fail-fast rejects for the coordinator's poll
// cursor. Sequence numbers are monotonically increasing; the ring keeps
// the most recent capacity entries (a coordinator polling at its normal
// cadence never falls that far behind).
type rejectRing struct {
	mu      sync.Mutex
	cap     int
	entries []federation.Reject
	seq     uint64
}

func newRejectRing(capacity int) *rejectRing {
	return &rejectRing{cap: capacity}
}

// record is the engine's OnUnschedulable hook.
func (r *rejectRing) record(p *trace.Pod, reason sched.Reason) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.entries = append(r.entries, federation.Reject{Seq: r.seq, ID: p.ID, Reason: reason.String()})
	if len(r.entries) > r.cap {
		r.entries = append(r.entries[:0:0], r.entries[len(r.entries)-r.cap:]...)
	}
}

// page returns the rejects recorded after the cursor, plus the new
// cursor position.
func (r *rejectRing) page(after uint64) federation.RejectsPage {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].Seq > after })
	page := federation.RejectsPage{Next: r.seq}
	if i < len(r.entries) {
		page.Rejects = append([]federation.Reject(nil), r.entries[i:]...)
	}
	return page
}

// partitionMask builds the engine's InactiveNodes baseline for one shard
// of the fleet, and returns how many nodes the shard owns.
func partitionMask(nodes, index, count int) ([]bool, int) {
	mask := make([]bool, nodes)
	owned := 0
	for id := 0; id < nodes; id++ {
		if federation.BlockAssign(id, nodes, count) != index {
			mask[id] = true
		} else {
			owned++
		}
	}
	return mask, owned
}

// withFederationEndpoints mounts the partition-mode extras in front of
// the normal API.
func withFederationEndpoints(next http.Handler, e *engine.Engine, ring *rejectRing) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/federation/digest", func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, http.StatusOK, e.Digest())
	})
	mux.HandleFunc("GET /v1/federation/rejects", func(rw http.ResponseWriter, r *http.Request) {
		var after uint64
		if s := r.URL.Query().Get("after"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(rw, "bad after= cursor", http.StatusBadRequest)
				return
			}
			after = v
		}
		writeJSON(rw, http.StatusOK, ring.page(after))
	})
	mux.Handle("/", next)
	return mux
}

// runCoordinator serves the federation front door over already-running
// partition daemons. It owns no engine: routing state only. lcSample and
// lcBuf configure the coordinator's own lifecycle recorder; sampling
// must match the partitions' -lifecycle-sample for timelines to stitch.
func runCoordinator(ctx context.Context, urls []string, addr string, lcSample, lcBuf int, logger *slog.Logger, stdout io.Writer, onListen func(addr string)) int {
	var fcfg federation.Config
	fcfg.Engine.LifecycleEvery = lcSample
	fcfg.Engine.LifecycleBuffer = lcBuf
	co, err := federation.NewRemote(urls, fcfg)
	if err != nil {
		logger.Error("federation construction failed", "err", err)
		return 1
	}
	var ready atomic.Bool
	capi := &coordinatorAPI{co: co, urls: urls, ready: &ready}
	capi.nextID.Store(1 << 40) // far above any trace pod ID

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Error("listen failed", "err", err, "addr", addr)
		return 1
	}
	srv := &http.Server{Handler: logRequests(logger, capi.handler())}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	if onListen != nil {
		onListen(ln.Addr().String())
	}

	co.Start()
	ready.Store(true)
	logger.Info("coordinator listening", "addr", ln.Addr().String(), "partitions", len(urls))

	select {
	case <-ctx.Done():
		logger.Info("signal received, shutting down")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("http server failed", "err", err)
			return 1
		}
	}
	ready.Store(false)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown incomplete", "err", err)
	}
	co.Stop() // stops routing; the partition daemons keep running

	enc, _ := json.MarshalIndent(co.Snapshot(), "", "  ")
	stdout.Write(append(enc, '\n'))
	return 0
}

// coordinatorAPI is the HTTP surface over one federation coordinator.
type coordinatorAPI struct {
	co    *federation.Coordinator
	urls  []string // partition base URLs, index order (timeline fan-out)
	ready *atomic.Bool
	// client fetches partition timelines; nil uses a 5-second default.
	client *http.Client
	nextID atomic.Int64
}

func (a *coordinatorAPI) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(rw http.ResponseWriter, _ *http.Request) {
		if a.ready.Load() {
			rw.Write([]byte("ok\n"))
			return
		}
		http.Error(rw, "not ready", http.StatusServiceUnavailable)
	})
	mux.Handle("GET /metrics", a.co.MetricsHandler())
	mux.HandleFunc("POST /v1/pods", a.submitPod)
	mux.HandleFunc("GET /v1/pods/{id}", a.getPod)
	mux.HandleFunc("GET /v1/metrics", func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, http.StatusOK, a.co.Snapshot())
	})
	mux.HandleFunc("GET /v1/debug/pods/{id}/timeline", a.getPodTimeline)
	mux.HandleFunc("GET /v1/debug/flight", a.getFlight)
	return mux
}

// getPodTimeline stitches one sampled pod's cross-process timeline: the
// coordinator's own route/spillover spans plus every partition's
// lifecycle stages, merged into a single StitchedTimeline (or a merged
// multi-process Chrome trace with ?format=chrome). Partitions sample by
// the same pod-ID modulus, so a pod sampled here is sampled there.
func (a *coordinatorAPI) getPodTimeline(rw http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(rw, "bad pod id", http.StatusBadRequest)
		return
	}
	var docs []obs.TimelineDoc
	if doc, ok := a.co.Lifecycle().TimelineDoc(id); ok {
		docs = append(docs, doc)
	}
	client := a.client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	for _, u := range a.urls {
		doc, ok, err := fetchTimeline(client, u, id)
		if err != nil {
			http.Error(rw, "partition timeline fetch: "+err.Error(), http.StatusBadGateway)
			return
		}
		if ok {
			docs = append(docs, doc)
		}
	}
	if len(docs) == 0 {
		http.Error(rw, "no timeline for pod (not sampled, evicted, or tracing off)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		rw.Header().Set("Content-Type", "application/json")
		obs.WriteMergedChromeTrace(rw, docs)
		return
	}
	writeJSON(rw, http.StatusOK, obs.StitchedTimeline{
		Pod:       id,
		Trace:     docs[0].Trace,
		Processes: docs,
	})
}

// fetchTimeline asks one partition daemon for the pod's timeline. A 404
// (not sampled there, evicted, or tracing off) is not an error — the pod
// simply never passed through that partition's recorder.
func fetchTimeline(client *http.Client, baseURL string, id int64) (obs.TimelineDoc, bool, error) {
	var doc obs.TimelineDoc
	resp, err := client.Get(fmt.Sprintf("%s/v1/debug/pods/%d/timeline", baseURL, id))
	if err != nil {
		return doc, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return doc, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return doc, false, fmt.Errorf("%s: HTTP %d", baseURL, resp.StatusCode)
	}
	var st obs.StitchedTimeline
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return doc, false, err
	}
	if len(st.Processes) == 0 {
		return doc, false, nil
	}
	return st.Processes[0], true, nil
}

// getFlight dumps the coordinator's own flight recorder (routing and
// spillover events). Partition flight rings are served by the partition
// daemons' own /v1/debug/flight.
func (a *coordinatorAPI) getFlight(rw http.ResponseWriter, r *http.Request) {
	lc := a.co.Lifecycle()
	if lc == nil {
		http.Error(rw, "lifecycle tracing off (start with -lifecycle-sample or -lifecycle-buffer)", http.StatusNotFound)
		return
	}
	window := 10 * time.Second
	if s := r.URL.Query().Get("window"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			http.Error(rw, "bad window= value", http.StatusBadRequest)
			return
		}
		window = d
	}
	rw.Header().Set("Content-Type", "application/json")
	lc.WriteFlight(rw, window, "debug-endpoint", "")
}

func (a *coordinatorAPI) submitPod(rw http.ResponseWriter, r *http.Request) {
	var p trace.Pod
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		writeJSON(rw, http.StatusBadRequest, submitResponse{Status: "rejected", Error: err.Error()})
		return
	}
	if p.ID < 0 {
		p.ID = int(a.nextID.Add(1))
	}
	if p.CPUScale == 0 {
		p.CPUScale = 1
	}
	if p.MemScale == 0 {
		p.MemScale = 1
	}
	// The pod is not linked here: each partition daemon resolves the app
	// reference against its own (identical) catalogue on arrival.
	switch err := a.co.Submit(&p); {
	case err == nil:
		writeJSON(rw, http.StatusAccepted, submitResponse{ID: p.ID, Status: "queued"})
	case errors.Is(err, engine.ErrQueueFull), errors.Is(err, federation.ErrShed):
		writeJSON(rw, http.StatusTooManyRequests, submitResponse{ID: p.ID, Status: "shed", Error: err.Error()})
	case errors.Is(err, engine.ErrDuplicate):
		writeJSON(rw, http.StatusConflict, submitResponse{ID: p.ID, Status: "duplicate", Error: err.Error()})
	default:
		writeJSON(rw, http.StatusServiceUnavailable, submitResponse{ID: p.ID, Status: "rejected", Error: err.Error()})
	}
}

func (a *coordinatorAPI) getPod(rw http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(rw, "bad pod id", http.StatusBadRequest)
		return
	}
	st, ok := a.co.PodStatus(id)
	if !ok {
		http.Error(rw, "unknown pod", http.StatusNotFound)
		return
	}
	writeJSON(rw, http.StatusOK, st)
}
