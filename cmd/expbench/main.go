// Command expbench reproduces the paper's evaluation section end to end:
// Fig. 11 (predictor accuracy), Fig. 18 (profiler accuracy per learning
// model), Fig. 19/20 (utilization, violations, pod performance per
// scheduler), Fig. 21 (omega sensitivity), Fig. 22 (scheduling overhead
// versus cluster size), and the DESIGN.md ablations.
//
// Usage:
//
//	expbench                 # quick scale (seconds)
//	expbench -full           # paper-shaped scale (minutes)
//	expbench -only fig19     # one experiment
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"unisched/internal/experiments"
	"unisched/internal/texttab"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("expbench: ")
	var (
		full = flag.Bool("full", false, "run at the paper-shaped full scale")
		only = flag.String("only", "", "run a single experiment: fig11|fig18|fig19|fig21|fig22|ablations")
		seed = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()
	out := os.Stdout

	scale := experiments.QuickScale()
	if *full {
		scale = experiments.FullScale()
	}
	scale.Seed = *seed
	fmt.Fprintf(out, "== evaluation at %d nodes, %dh, seed %d ==\n",
		scale.Nodes, scale.Horizon/3600, scale.Seed)
	fmt.Fprintln(out, "building setup (baseline replay + profile training)...")
	s, err := experiments.NewSetup(scale)
	if err != nil {
		log.Fatal(err)
	}

	want := func(name string) bool { return *only == "" || strings.EqualFold(*only, name) }

	if want("fig11") {
		fmt.Fprintln(out, "\n-- Fig 11: host CPU usage prediction error (%) --")
		tb := texttab.New("predictor", "meanAbs", "over p50", "over p99", "under p50", "P(under>10%)")
		for _, r := range experiments.Fig11PredictorErrors(s, 4) {
			tb.Row(r.Name, r.MeanAbs, r.Over.Quantile(0.5), r.Over.Quantile(0.99),
				r.Under.Quantile(0.5), r.UnderFrac10)
		}
		tb.Render(out)
	}

	if want("fig18") {
		fmt.Fprintln(out, "\n-- Fig 18: per-application profiling MAPE by model --")
		rows, err := experiments.Fig18ProfilerAccuracy(s)
		if err != nil {
			log.Fatal(err)
		}
		tb := texttab.New("model", "LS p50", "LS P(<0.1)", "BE p50", "BE P(<0.2)")
		for _, r := range rows {
			tb.Row(r.Model, r.LS.Quantile(0.5), r.LS.At(0.1), r.BE.Quantile(0.5), r.BE.At(0.2))
		}
		tb.Render(out)
	}

	if want("fig19") || want("fig20") {
		fmt.Fprintln(out, "\n-- Fig 19 + 20: end-to-end comparison vs the production baseline --")
		tb := texttab.New("scheduler", "util +pp", "goodput +pp", "violation",
			"PSI viol", "CT viol", "mean wait s", "max wait s")
		lineup := append([]experiments.SchedulerName{}, experiments.EvalSchedulers...)
		lineup = append(lineup, experiments.NameKubeLike) // ecosystem reference point
		for _, e := range experiments.RunEvaluation(s, lineup) {
			tb.Row(string(e.Name), e.MeanImprovement, e.GoodputImprovement,
				e.ViolationRate, e.PSIViolationRate, e.CTViolationRate, e.MeanWait, e.MaxWait)
		}
		tb.Render(out)
	}

	if want("fig21") {
		fmt.Fprintln(out, "\n-- Fig 21: sensitivity to omega_o / omega_b --")
		tb := texttab.New("omega_o", "omega_b", "util +pp", "CT viol", "PSI viol")
		for _, p := range experiments.Fig21Sensitivity(s, []float64{0.1, 0.5, 0.9}) {
			tb.Row(p.OmegaO, p.OmegaB, p.MeanImprovement, p.CTViolationRate, p.PSIViolationRate)
		}
		tb.Render(out)
	}

	if want("fig22") {
		fmt.Fprintln(out, "\n-- Fig 22: per-pod scheduling latency vs cluster size --")
		counts := []int{500, 1000, 2000}
		if *full {
			counts = []int{1000, 2000, 3000, 4000, 5000, 6000}
		}
		tb := texttab.New("scheduler", "nodes", "mean ms", "max ms")
		for _, p := range experiments.Fig22Overhead(s, counts, 30) {
			tb.Row(string(p.Scheduler), p.Nodes, p.MeanMs, p.MaxMs)
		}
		tb.Render(out)
	}

	if want("ablations") {
		fmt.Fprintln(out, "\n-- Ablations --")
		ero := experiments.RunAblationERO(s)
		fmt.Fprintf(out, "ERO vs P99: Optum meanAbs %.1f%% underRate %.4f | RC meanAbs %.1f%% underRate %.4f (n=%d)\n",
			ero.OptumMeanAbs, ero.OptumUnderRate, ero.RCMeanAbs, ero.RCUnderRate, ero.Samples)
		bk, err := experiments.RunAblationBucketize(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "bucketized vs raw targets: LS MAPE %.3f vs %.3f\n",
			bk.BucketizedLSMAPE, bk.RawLSMAPE)
		ppo := experiments.RunAblationPPO(s)
		fmt.Fprintf(out, "PPO sampling: %.3fms/pod, +%.2fpp, psiViol %.3f | full scan: %.3fms/pod, +%.2fpp, psiViol %.3f\n",
			ppo.SampledMeanMs, ppo.SampledImprove, ppo.SampledPSIViol,
			ppo.FullMeanMs, ppo.FullImprove, ppo.FullPSIViol)
		sf := experiments.RunAblationScoreForm(s)
		fmt.Fprintf(out, "joint vs CPU-only score: busy-mem %.3f vs %.3f, improvement %+.2fpp vs %+.2fpp\n",
			sf.JointMemBusy, sf.CPUOnlyMemBusy, sf.JointImprove, sf.CPUOnlyImprove)
		tr := experiments.RunAblationTriples(s)
		fmt.Fprintf(out, "pairwise vs triple ERO: meanAbs %.1f%% vs %.1f%%, meanOver %.1f%% vs %.1f%% (%d pairs, %d triples, n=%d)\n",
			tr.PairMeanAbs, tr.TripleMeanAbs, tr.PairMeanOver, tr.TripleMeanOver,
			tr.Pairs, tr.Triples, tr.Samples)
	}
}
