// promcheck fetches Prometheus text expositions and validates them with
// the same checker the loadgen scrape harness uses: every sample line
// must belong to a declared family, histogram buckets must be cumulative
// and le-ordered, and counters must not carry gauge suffixes. Each
// argument is a URL (http:// or https://) or a file path; with no
// arguments it validates stdin. Exit status is nonzero when any source
// fails, so CI can gate a live /metrics endpoint:
//
//	promcheck http://127.0.0.1:9090/metrics
//
// -require NAME may repeat: every listed metric family must be declared
// in every source, catching expositions that validate but silently lost
// a family.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"time"

	"unisched/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("promcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var require []string
	fs.Func("require", "metric family that must be declared (repeatable)", func(s string) error {
		require = append(require, s)
		return nil
	})
	timeout := fs.Duration("timeout", 10*time.Second, "per-URL fetch timeout")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sources := fs.Args()
	ok := true
	if len(sources) == 0 {
		ok = check(stdout, stderr, "stdin", stdin, require)
	}
	client := &http.Client{Timeout: *timeout}
	for _, src := range sources {
		body, err := open(client, src)
		if err != nil {
			fmt.Fprintf(stderr, "promcheck FAIL %s: %v\n", src, err)
			ok = false
			continue
		}
		if !check(stdout, stderr, src, body, require) {
			ok = false
		}
		body.Close()
	}
	if !ok {
		return 1
	}
	return 0
}

func open(client *http.Client, src string) (io.ReadCloser, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := client.Get(src)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("status %s", resp.Status)
		}
		return resp.Body, nil
	}
	return os.Open(src)
}

var helpLine = regexp.MustCompile(`^# HELP (\S+) `)

func check(stdout, stderr io.Writer, label string, r io.Reader, require []string) bool {
	// The exposition is read twice (validate, then family scan), so
	// buffer it; these are metric pages, not bulk data.
	raw, err := io.ReadAll(io.LimitReader(r, 16<<20))
	if err != nil {
		fmt.Fprintf(stderr, "promcheck FAIL %s: read: %v\n", label, err)
		return false
	}
	if err := obs.ValidateExposition(bytes.NewReader(raw)); err != nil {
		fmt.Fprintf(stderr, "promcheck FAIL %s: %v\n", label, err)
		return false
	}
	declared := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		if m := helpLine.FindStringSubmatch(line); m != nil {
			declared[m[1]] = true
		}
	}
	ok := true
	for _, name := range require {
		if !declared[name] {
			fmt.Fprintf(stderr, "promcheck FAIL %s: required family %q not declared\n", label, name)
			ok = false
		}
	}
	if ok {
		fmt.Fprintf(stdout, "promcheck OK %s: %d families\n", label, len(declared))
	}
	return ok
}
