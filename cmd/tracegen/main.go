// Command tracegen generates a synthetic unified-scheduling workload with
// the statistical shapes of the Alibaba traces and writes it as JSON.
//
// Usage:
//
//	tracegen -nodes 200 -hours 24 -seed 1 -out trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"unisched/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		nodes = flag.Int("nodes", 200, "number of physical hosts")
		hours = flag.Int("hours", 24, "trace horizon in hours")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("out", "trace.json", "output path")
		small = flag.Bool("small", false, "use the fast small-scale profile")
	)
	flag.Parse()

	cfg := trace.DefaultConfig()
	if *small {
		cfg = trace.SmallConfig()
	}
	cfg.NumNodes = *nodes
	cfg.Horizon = int64(*hours) * 3600
	cfg.Seed = *seed

	w, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.SaveFile(*out, w); err != nil {
		log.Fatal(err)
	}
	counts := map[trace.SLO]int{}
	for _, p := range w.Pods {
		counts[p.SLO]++
	}
	fmt.Fprintf(os.Stdout, "wrote %s: %d nodes, %d apps, %d pods over %dh\n",
		*out, len(w.Nodes), len(w.Apps), len(w.Pods), *hours)
	for _, slo := range []trace.SLO{trace.SLOBE, trace.SLOLS, trace.SLOLSR,
		trace.SLOUnknown, trace.SLOSystem, trace.SLOVMEnv} {
		fmt.Fprintf(os.Stdout, "  %-8s %6d pods (%.1f%%)\n",
			slo, counts[slo], 100*float64(counts[slo])/float64(len(w.Pods)))
	}
}
