// Command optumsim runs one end-to-end trace-driven simulation under a
// chosen scheduler and prints the headline outcomes: utilization series,
// violation rate, waiting times, and per-class performance.
//
// Usage:
//
//	optumsim -scheduler optum -nodes 100 -hours 6 -seed 1
//	optumsim -scheduler alibaba -trace trace.json
//	optumsim -chaos -nodes 100 -hours 6 -seed 1
//	optumsim -scheduler optum -cpuprofile cpu.out -memprofile mem.out
//	optumsim -scheduler optum -decision-trace decisions.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"unisched/internal/analysis"
	"unisched/internal/chaos"
	"unisched/internal/cluster"
	"unisched/internal/core"
	"unisched/internal/experiments"
	"unisched/internal/obs"
	"unisched/internal/pipeline"
	"unisched/internal/profiler"
	"unisched/internal/sched"
	"unisched/internal/sim"
	"unisched/internal/stats"
	"unisched/internal/texttab"
	"unisched/internal/trace"
	"unisched/internal/tracedb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optumsim: ")
	var (
		schedName = flag.String("scheduler", "optum",
			"scheduler: optum | alibaba | borg | nsigma | rc | medea | kube")
		nodes     = flag.Int("nodes", 100, "number of hosts (ignored with -trace)")
		hours     = flag.Int("hours", 6, "horizon in hours (ignored with -trace)")
		seed      = flag.Int64("seed", 1, "seed")
		tracePath = flag.String("trace", "", "load workload from JSON instead of generating")
		samples   = flag.String("samples", "", "record 30s node+pod samples to this JSONL file")
		chaosRun  = flag.Bool("chaos", false,
			"fault-injection mode: compare Optum vs the Alibaba baseline under identical node churn")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an end-of-run heap profile to this file")
		decTrace   = flag.String("decision-trace", "",
			"record every placement decision and write a Chrome trace-event JSON file (open in chrome://tracing or Perfetto)")
	)
	flag.Parse()
	out := os.Stdout

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Deferred so the profile reflects the completed run; GC first so
		// it shows live objects rather than garbage awaiting collection.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *chaosRun {
		runChurn(out, *nodes, *hours, *seed)
		return
	}

	var w *trace.Workload
	var err error
	if *tracePath != "" {
		w, err = trace.LoadFile(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := trace.DefaultConfig()
		cfg.Seed = *seed
		cfg.NumNodes = *nodes
		cfg.Horizon = int64(*hours) * 3600
		w, err = trace.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(out, "workload: %d nodes, %d apps, %d pods, %dh horizon\n",
		len(w.Nodes), len(w.Apps), len(w.Pods), w.Horizon/3600)

	c := cluster.New(w.Nodes, cluster.DefaultPhysics())
	var s sched.Scheduler
	switch strings.ToLower(*schedName) {
	case "optum":
		fmt.Fprintln(out, "profiling (offline pass under the production baseline)...")
		col := profiler.NewCollector(*seed)
		warm := cluster.New(w.Nodes, cluster.DefaultPhysics())
		sim.Run(w, warm, sched.NewAlibabaLike(warm, *seed), sim.Config{Collector: col})
		models, err := col.TrainInterference(profiler.DefaultFactory(), 0.25)
		if err != nil {
			log.Fatal(err)
		}
		prof := core.Profiles{ERO: col.ERO(), Stats: col.Stats(), Models: models}
		fmt.Fprintf(out, "profiles: %d app pairs, %d LS models, %d BE models\n",
			prof.ERO.Pairs(), len(models.LS), len(models.BE))
		s = core.New(c, prof, core.DefaultOptions(), *seed)
	case "alibaba":
		s = sched.NewAlibabaLike(c, *seed)
	case "borg":
		s = sched.NewBorgLike(c, *seed)
	case "nsigma":
		s = sched.NewNSigma(c, *seed)
	case "rc":
		s = sched.NewRCLike(c, *seed)
	case "medea":
		s = sched.NewMedea(c, *seed)
	case "kube":
		s = sched.NewKubeLike(c, *seed)
	default:
		log.Fatalf("unknown scheduler %q", *schedName)
	}

	var rec *obs.Recorder
	if *decTrace != "" {
		pp, ok := s.(interface{ Pipeline() *pipeline.Pipeline })
		if !ok {
			log.Fatalf("-decision-trace: scheduler %q does not run on the staged pipeline", *schedName)
		}
		// Record every decision: an offline run has no latency budget, and
		// a complete trace is what chrome://tracing is for.
		rec = obs.NewRecorder(len(w.Pods)+1, 1)
		pp.Pipeline().SetRecorder(rec)
	}

	fmt.Fprintf(out, "running %s...\n\n", s.Name())
	simCfg := sim.Config{}
	if *samples != "" {
		f, err := os.Create(*samples)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		wr := tracedb.NewWriter(f)
		simCfg.OnTick = wr.OnTick
		defer func() {
			if err := wr.Flush(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(out, "wrote %d samples to %s\n", wr.Records(), *samples)
		}()
	}
	res := sim.Run(w, c, s, simCfg)

	if rec != nil {
		f, err := os.Create(*decTrace)
		if err != nil {
			log.Fatal(err)
		}
		traces := rec.All()
		if err := obs.WriteChromeTrace(f, traces); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "wrote %d decision traces to %s\n", len(traces), *decTrace)
	}

	fmt.Fprintf(out, "host CPU util  %s (mean %.3f, busy-host mean %.3f)\n",
		texttab.Sparkline(res.CPUUtilAvg, 60),
		stats.Mean(res.CPUUtilAvg), stats.Mean(res.CPUUtilBusy))
	fmt.Fprintf(out, "host mem util  %s (mean %.3f)\n",
		texttab.Sparkline(res.MemUtilAvg, 60), stats.Mean(res.MemUtilAvg))
	fmt.Fprintf(out, "goodput (busy) %s (mean %.3f)\n",
		texttab.Sparkline(res.GoodputBusy, 60), stats.Mean(res.GoodputBusy))
	fmt.Fprintf(out, "violation rate mean %.5f\n\n", stats.Mean(res.Violation))

	fmt.Fprintf(out, "pods placed %d, still pending %d\n", res.Placed, res.Pending)
	tb := texttab.New("SLO", "waits (s)")
	cdfs := analysis.WaitingTimeCDF(res)
	slos := make([]trace.SLO, 0, len(cdfs))
	for slo := range cdfs {
		slos = append(slos, slo)
	}
	sort.Slice(slos, func(i, j int) bool { return slos[i] < slos[j] })
	for _, slo := range slos {
		tb.Row(slo.String(), texttab.CDFRow(cdfs[slo]))
	}
	tb.Render(out)

	var psis, cts []float64
	for _, v := range res.MaxPSI {
		psis = append(psis, v)
	}
	for _, v := range res.BECT {
		cts = append(cts, v)
	}
	fmt.Fprintf(out, "\nLS worst-PSI distribution: %s\n", stats.NewCDF(psis))
	fmt.Fprintf(out, "BE completion time (s):    %s\n", stats.NewCDF(cts))
	if len(res.SchedLatency) > 0 {
		fmt.Fprintf(out, "scheduling latency per pod: mean %.3fms max %.3fms\n",
			1000*stats.Mean(res.SchedLatency), 1000*stats.Max(res.SchedLatency))
	}
}

// runChurn is the -chaos mode: train profiles once, then replay the same
// workload under identical fault streams for Optum and the Alibaba
// baseline, printing how each handles the disruption.
func runChurn(out *os.File, nodes, hours int, seed int64) {
	if nodes <= 0 || hours <= 0 {
		log.Fatalf("-chaos needs positive -nodes and -hours, got %d and %d", nodes, hours)
	}
	scale := experiments.Scale{Nodes: nodes, Horizon: int64(hours) * 3600, Seed: seed}
	fmt.Fprintf(out, "chaos mode: %d nodes, %dh horizon, seed %d\n", nodes, hours, seed)
	fmt.Fprintln(out, "profiling (offline pass under the production baseline)...")
	setup, err := experiments.NewSetup(scale)
	if err != nil {
		log.Fatal(err)
	}
	rates := chaos.DefaultRates()
	fmt.Fprintf(out, "fault rates: %.1f crashes/h (MTTR %ds), %.1f drains/h, %.1f evictions/h, %.1f blackouts/h\n\n",
		rates.NodeFailPerHour, rates.MTTR, rates.NodeDrainPerHour,
		rates.PodEvictPerHour, rates.BlackoutPerHour)

	evals := experiments.FigChurn(setup, nil, rates, nil)
	tb := texttab.New("scheduler", "faults", "evictions", "resched", "exhausted", "lost",
		"ttr mean(s)", "cap lost", "violation", "util busy", "LS wait(s)")
	for _, ev := range evals {
		tb.Row(string(ev.Name),
			fmt.Sprintf("%d", ev.FaultEvents),
			fmt.Sprintf("%d", ev.Evictions),
			fmt.Sprintf("%d", ev.Reschedules),
			fmt.Sprintf("%d", ev.Exhausted),
			fmt.Sprintf("%d", ev.LostPods),
			fmt.Sprintf("%.0f", ev.MeanTimeToReplace),
			fmt.Sprintf("%.3f", ev.MeanCapacityLost),
			fmt.Sprintf("%.5f", ev.ViolationRate),
			fmt.Sprintf("%.3f", ev.MeanUtilBusy),
			fmt.Sprintf("%.1f", ev.MeanWaitLS),
		)
	}
	tb.Render(out)
	for _, ev := range evals {
		fmt.Fprintf(out, "\n%s down-nodes   %s (max %d)\n", ev.Name,
			texttab.Sparkline(intsToFloats(ev.Result.Disruption.DownNodes), 60), ev.MaxDownNodes)
		fmt.Fprintf(out, "%s violation    %s (mean %.5f)\n", ev.Name,
			texttab.Sparkline(ev.Result.Violation, 60), ev.ViolationRate)
	}
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
