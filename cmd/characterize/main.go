// Command characterize reproduces the paper's Section-3 study of
// unified-scheduling workloads: it replays a production-shaped synthetic
// trace under the Alibaba-like scheduler and prints the data behind
// Figures 2-16.
//
// Usage:
//
//	characterize -nodes 48 -hours 24 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"unisched/internal/analysis"
	"unisched/internal/stats"
	"unisched/internal/texttab"
	"unisched/internal/trace"
)

func main() {
	var (
		nodes = flag.Int("nodes", 48, "number of physical hosts")
		hours = flag.Int("hours", 24, "trace horizon in hours")
		seed  = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	out := os.Stdout

	fmt.Fprintf(out, "== Section 3 characterization: %d nodes, %dh, seed %d ==\n\n",
		*nodes, *hours, *seed)
	w, res, rec := analysis.RunStudy(analysis.StudyConfig{
		Nodes: *nodes, Horizon: int64(*hours) * 3600, Seed: *seed,
	})
	fmt.Fprintf(out, "workload: %d apps, %d pods; placed %d, pending %d\n\n",
		len(w.Apps), len(w.Pods), res.Placed, res.Pending)

	// Fig 2b.
	fmt.Fprintln(out, "-- Fig 2b: pod SLO distribution --")
	tb := texttab.New("SLO", "fraction")
	for _, slo := range []trace.SLO{trace.SLOUnknown, trace.SLOSystem, trace.SLOVMEnv,
		trace.SLOLSR, trace.SLOLS, trace.SLOBE} {
		tb.Row(slo.String(), analysis.SLODistribution(w)[slo])
	}
	tb.Render(out)

	// Fig 3.
	be, ls := analysis.SubmissionSeries(w, 600)
	fmt.Fprintf(out, "\n-- Fig 3a: submissions per 10 min (sparklines) --\nBE %s\nLS %s\n",
		texttab.Sparkline(be.Values, 60), texttab.Sparkline(ls.Values, 60))
	q := analysis.QPSSeries(w, 900)
	fmt.Fprintf(out, "-- Fig 3b: average LS pod QPS --\n   %s (min %.0f max %.0f)\n",
		texttab.Sparkline(q.Values, 60), stats.Min(q.Values), stats.Max(q.Values))

	// Fig 4.
	fmt.Fprintf(out, "\n-- Fig 4a: mean pod CPU utilization by class --\nBE %s\nLS %s\n",
		texttab.Sparkline(res.ClassUtil[trace.SLOBE], 60),
		texttab.Sparkline(res.ClassUtil[trace.SLOLS], 60))
	fmt.Fprintf(out, "-- Fig 4b: host utilization --\ncpu avg %s (mean %.2f)\ncpu max %s (peak %.2f)\nmem avg %s (mean %.2f)\n",
		texttab.Sparkline(res.CPUUtilAvg, 60), stats.Mean(res.CPUUtilAvg),
		texttab.Sparkline(res.CPUUtilMax, 60), stats.Max(res.CPUUtilMax),
		texttab.Sparkline(res.MemUtilAvg, 60), stats.Mean(res.MemUtilAvg))

	// Fig 5.
	oc := analysis.OvercommitCDF(rec)
	fmt.Fprintln(out, "\n-- Fig 5: over-commitment rate across (host,time) --")
	tb = texttab.New("metric", "quantiles")
	tb.Row("CPU request", texttab.CDFRow(oc.ReqCPU))
	tb.Row("CPU limit", texttab.CDFRow(oc.LimitCPU))
	tb.Row("Mem request", texttab.CDFRow(oc.ReqMem))
	tb.Row("Mem limit", texttab.CDFRow(oc.LimitMem))
	tb.Render(out)
	fmt.Fprintf(out, "P(host CPU overcommitted) = %.2f, P(mem) = %.2f\n",
		1-oc.ReqCPU.At(1), 1-oc.ReqMem.At(1))

	// Fig 6.
	ru := analysis.RequestUsageCDF(rec, w, true)
	rm := analysis.RequestUsageCDF(rec, w, false)
	fmt.Fprintln(out, "\n-- Fig 6: request vs usage (per-pod gap = request/mean usage) --")
	tb = texttab.New("class", "median CPU gap", "median mem gap")
	tb.Row("BE", ru.BEGap.Quantile(0.5), rm.BEGap.Quantile(0.5))
	tb.Row("LS", ru.LSGap.Quantile(0.5), rm.LSGap.Quantile(0.5))
	tb.Render(out)

	// Fig 7.
	ar := analysis.ArrivalRateCDF(w)
	fmt.Fprintf(out, "\n-- Fig 7: pods to schedule per minute --\n%s\n", ar)

	// Fig 8.
	fmt.Fprintln(out, "\n-- Fig 8: waiting time by SLO (seconds) --")
	tb = texttab.New("SLO", "quantiles")
	wt := analysis.WaitingTimeCDF(res)
	for _, slo := range []trace.SLO{trace.SLOBE, trace.SLOLS, trace.SLOLSR} {
		if c := wt[slo]; c != nil {
			tb.Row(slo.String(), texttab.CDFRow(c))
		}
	}
	tb.Render(out)

	// Fig 9.
	fmt.Fprintln(out, "\n-- Fig 9a: mean wait by request-size quartile --")
	tb = texttab.New("SLO", "Low", "Med", "High", "VeryHigh")
	wr := analysis.WaitingByRequestSize(res, w)
	for _, slo := range []trace.SLO{trace.SLOBE, trace.SLOLS, trace.SLOLSR} {
		if b, ok := wr[slo]; ok {
			tb.Row(slo.String(), b[0], b[1], b[2], b[3])
		}
	}
	tb.Render(out)
	fmt.Fprintln(out, "\n-- Fig 9b: delay sources (fraction of delayed pods) --")
	for slo, m := range analysis.DelaySources(res) {
		fmt.Fprintf(out, "  %-4v %v\n", slo, m)
	}

	// Fig 10.
	usage, request := analysis.HostRankCDF(res)
	fmt.Fprintln(out, "\n-- Fig 10: chosen-host rank (normalized, 0 = best aligned) --")
	tb = texttab.New("SLO", "usage-view top-25%", "request-view top-25%")
	for _, slo := range []trace.SLO{trace.SLOBE, trace.SLOLS, trace.SLOLSR} {
		if usage[slo] != nil {
			tb.Row(slo.String(), usage[slo].At(0.25), request[slo].At(0.25))
		}
	}
	tb.Render(out)

	// Fig 12.
	cov := analysis.CoVDistribution(rec, res, w, 2)
	fmt.Fprintln(out, "\n-- Fig 12: within-application CoV (median across apps) --")
	tb = texttab.New("metric", "median CoV", "P(CoV<1)")
	tb.Row("LS CPU used", cov.LSCPUUsed.Quantile(0.5), cov.LSCPUUsed.At(1))
	tb.Row("LS mem util", cov.LSMemUtil.Quantile(0.5), cov.LSMemUtil.At(1))
	tb.Row("LS RT", cov.LSRT.Quantile(0.5), cov.LSRT.At(1))
	tb.Row("LS QPS", cov.LSQPS.Quantile(0.5), cov.LSQPS.At(1))
	tb.Row("BE CPU used", cov.BECPUUsed.Quantile(0.5), cov.BECPUUsed.At(1))
	tb.Row("BE mem util", cov.BEMemUtil.Quantile(0.5), cov.BEMemUtil.At(1))
	tb.Row("BE completion", cov.BECT.Quantile(0.5), cov.BECT.At(1))
	tb.Render(out)

	// Fig 13-16.
	printCorr := func(title string, rows []analysis.CorrSummary) {
		fmt.Fprintf(out, "\n-- %s --\n", title)
		tb := texttab.New("metric", "p25", "p50", "p75", "apps")
		for _, r := range rows {
			tb.Row(r.Metric, r.P25, r.P50, r.P75, r.N)
		}
		tb.Render(out)
	}
	printCorr("Fig 13: corr(pod RT, OS metric) across LS apps", analysis.RTCorrelations(rec))
	printCorr("Fig 14: corr(pod QPS, OS metric) across LS apps", analysis.QPSCorrelations(rec))
	printCorr("Fig 15a: corr(PSI, host CPU util)", analysis.PSIUtilCorrelations(rec, true))
	printCorr("Fig 15b: corr(PSI, pod CPU util)", analysis.PSIUtilCorrelations(rec, false))
	printCorr("Fig 16: corr(BE completion time, per-run metric)",
		analysis.BECorrelations(rec, res.BECT, 3))
}
