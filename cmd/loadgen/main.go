// Command loadgen replays a generated trace.Workload against a running
// unischedd instance: pods are submitted over HTTP in trace order, paced
// by their submission timestamps at a configurable speedup, from a pool
// of concurrent clients. At the end it polls the server until the engine
// settles and verifies conservation — every submission is placed, pending,
// or explicitly shed; nothing is lost.
//
// Usage (server and loadgen must agree on the workload):
//
//	unischedd -nodes 200 -hours 24 -seed 1 &
//	loadgen -addr http://localhost:8080 -nodes 200 -hours 24 -seed 1 -speedup 1200
//
// It reports achieved submission throughput, HTTP latency percentiles,
// and the server's placement metrics, and exits non-zero on lost
// submissions or transport errors. With -scrape it also checks the
// observability surface: /metrics must be valid Prometheus exposition,
// /v1/debug/decisions must hold traces when tracing is on, and
// /v1/metrics/history must have accumulated at least two samples.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"unisched/internal/obs"
	"unisched/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		addr      = flag.String("addr", "http://localhost:8080", "unischedd base URL")
		tracePath = flag.String("trace", "", "load workload from JSON instead of generating")
		nodes     = flag.Int("nodes", 200, "number of hosts (must match the server)")
		hours     = flag.Int("hours", 24, "horizon in hours (must match the server)")
		seed      = flag.Int64("seed", 1, "seed (must match the server)")
		speedup   = flag.Float64("speedup", 0, "trace-time speedup; 0 submits as fast as possible")
		clients   = flag.Int("clients", 8, "concurrent HTTP clients")
		timeout   = flag.Duration("timeout", 5*time.Minute, "settle-poll timeout after the replay")
		scrape    = flag.Bool("scrape", false,
			"after the replay, scrape /metrics, /v1/debug/decisions, and /v1/metrics/history and fail on malformed or empty output")
	)
	flag.Parse()

	var w *trace.Workload
	var err error
	if *tracePath != "" {
		w, err = trace.LoadFile(*tracePath)
	} else {
		cfg := trace.DefaultConfig()
		cfg.Seed = *seed
		cfg.NumNodes = *nodes
		cfg.Horizon = int64(*hours) * 3600
		w, err = trace.Generate(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	pods := append([]*trace.Pod(nil), w.Pods...)
	sort.SliceStable(pods, func(i, j int) bool { return pods[i].Submit < pods[j].Submit })
	log.Printf("replaying %d pods against %s with %d clients (speedup %g)",
		len(pods), *addr, *clients, *speedup)

	// Pacer feeds the client pool in trace order; clients post and tally.
	work := make(chan *trace.Pod, 4**clients)
	results := make([]clientResult, *clients)
	var wg sync.WaitGroup
	hc := &http.Client{Timeout: 30 * time.Second}
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(res *clientResult) {
			defer wg.Done()
			for p := range work {
				postPod(hc, *addr, p, res)
			}
		}(&results[i])
	}

	start := time.Now()
	for _, p := range pods {
		if *speedup > 0 {
			target := time.Duration(float64(p.Submit) / *speedup * float64(time.Second))
			if d := target - time.Since(start); d > 0 {
				time.Sleep(d)
			}
		}
		work <- p
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	var total clientResult
	for i := range results {
		total.merge(&results[i])
	}
	sent := total.accepted + total.shed + total.dup + total.errors
	fmt.Printf("submitted %d pods in %v (%.0f submissions/s)\n",
		sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	fmt.Printf("  accepted %d, shed %d, duplicate %d, transport errors %d\n",
		total.accepted, total.shed, total.dup, total.errors)
	sort.Slice(total.lat, func(i, j int) bool { return total.lat[i] < total.lat[j] })
	if len(total.lat) > 0 {
		fmt.Printf("  http latency p50 %v  p95 %v  p99 %v\n",
			pct(total.lat, 0.50), pct(total.lat, 0.95), pct(total.lat, 0.99))
	}

	// Wait for the engine to settle, then check conservation.
	sn, settled := waitSettled(hc, *addr, *timeout)
	fmt.Printf("server: placed %d (%.0f placements/s wall), completed %d, shed %d, "+
		"pending %d, conflicts %d, decision p99 %.3fms\n",
		sn.Placed, sn.PlacementsPerSec, sn.Completed, sn.Shed,
		sn.Pending, sn.CommitConflicts, sn.DecisionP99Ms)

	lost := sn.Submitted - (sn.Placed + sn.Completed + sn.Expired + sn.Exhausted + sn.Shed + int64(sn.Pending))
	// Placed pods that later completed/expired are counted once: States is
	// authoritative when present.
	if sn.States != nil {
		lost = sn.Submitted
		for _, v := range sn.States {
			lost -= v
		}
	}
	switch {
	case total.errors > 0:
		log.Fatalf("FAIL: %d transport errors", total.errors)
	case sn.Submitted != int64(total.accepted+total.shed):
		log.Fatalf("FAIL: server saw %d submissions, client sent %d accepted+shed",
			sn.Submitted, total.accepted+total.shed)
	case lost != 0:
		log.Fatalf("FAIL: %d submissions lost (states %v)", lost, sn.States)
	case !settled:
		log.Printf("WARN: engine still working after %v (pending %d); conservation holds", *timeout, sn.Pending)
	default:
		fmt.Println("OK: zero lost submissions")
	}

	if *scrape {
		if err := scrapeObservability(hc, *addr); err != nil {
			log.Fatalf("FAIL: %v", err)
		}
		fmt.Println("OK: observability endpoints healthy")
	}
}

// scrapeObservability exercises the telemetry surface after a replay:
// the Prometheus exposition must parse, the decision-trace ring must hold
// records, and the utilization history must have accumulated samples.
func scrapeObservability(hc *http.Client, addr string) error {
	resp, err := hc.Get(addr + "/metrics")
	if err != nil {
		return fmt.Errorf("scrape /metrics: %w", err)
	}
	err = obs.ValidateExposition(resp.Body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("/metrics exposition invalid: %w", err)
	}

	var dec struct {
		Enabled   bool  `json:"enabled"`
		Committed int64 `json:"committed"`
		Count     int   `json:"count"`
	}
	if err := getJSON(hc, addr+"/v1/debug/decisions?last=5", &dec); err != nil {
		return err
	}
	if dec.Enabled && (dec.Count == 0 || dec.Committed == 0) {
		return fmt.Errorf("/v1/debug/decisions: tracing enabled but no traces recorded")
	}

	var hist struct {
		Count   int `json:"count"`
		Samples []struct {
			T       int64 `json:"t"`
			UpNodes int   `json:"up_nodes"`
		} `json:"samples"`
	}
	if err := getJSON(hc, addr+"/v1/metrics/history", &hist); err != nil {
		return err
	}
	if hist.Count < 2 || len(hist.Samples) != hist.Count {
		return fmt.Errorf("/v1/metrics/history: %d samples (want >= 2)", hist.Count)
	}
	fmt.Printf("scrape: exposition valid, %d traces retained, %d history samples\n",
		dec.Count, hist.Count)
	return nil
}

func getJSON(hc *http.Client, url string, v any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("scrape %s: %w", url, err)
	}
	return nil
}

// clientResult tallies one client's outcomes.
type clientResult struct {
	accepted int
	shed     int
	dup      int
	errors   int
	lat      []time.Duration
}

func (r *clientResult) merge(o *clientResult) {
	r.accepted += o.accepted
	r.shed += o.shed
	r.dup += o.dup
	r.errors += o.errors
	r.lat = append(r.lat, o.lat...)
}

func postPod(hc *http.Client, addr string, p *trace.Pod, res *clientResult) {
	body, err := json.Marshal(p)
	if err != nil {
		res.errors++
		return
	}
	t0 := time.Now()
	resp, err := hc.Post(addr+"/v1/pods", "application/json", bytes.NewReader(body))
	res.lat = append(res.lat, time.Since(t0))
	if err != nil {
		res.errors++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		res.accepted++
	case http.StatusTooManyRequests:
		res.shed++
	case http.StatusConflict:
		res.dup++
	default:
		res.errors++
	}
}

// metricsView mirrors the engine Snapshot fields loadgen consumes.
type metricsView struct {
	Submitted        int64            `json:"submitted"`
	Placed           int64            `json:"placed"`
	Completed        int64            `json:"completed"`
	Expired          int64            `json:"expired"`
	Exhausted        int64            `json:"exhausted"`
	Shed             int64            `json:"shed"`
	Pending          int              `json:"pending"`
	CommitConflicts  int64            `json:"commit_conflicts"`
	PlacementsPerSec float64          `json:"placements_per_sec"`
	DecisionP99Ms    float64          `json:"decision_p99_ms"`
	States           map[string]int64 `json:"states"`
}

func fetchMetrics(hc *http.Client, addr string) (metricsView, error) {
	var m metricsView
	resp, err := hc.Get(addr + "/v1/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// waitSettled polls the metrics endpoint until nothing is pending (or the
// timeout passes) and returns the last snapshot.
func waitSettled(hc *http.Client, addr string, timeout time.Duration) (metricsView, bool) {
	deadline := time.Now().Add(timeout)
	for {
		m, err := fetchMetrics(hc, addr)
		if err != nil {
			log.Printf("metrics poll: %v", err)
		} else if m.Pending == 0 {
			return m, true
		}
		if time.Now().After(deadline) {
			return m, false
		}
		time.Sleep(500 * time.Millisecond)
	}
}

func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
