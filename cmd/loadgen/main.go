// Command loadgen replays a generated trace.Workload against a running
// unischedd instance: pods are submitted over HTTP in trace order, paced
// by their submission timestamps at a configurable speedup, from a pool
// of concurrent clients. At the end it polls the server until the engine
// settles and verifies conservation — every submission is placed, pending,
// or explicitly shed; nothing is lost.
//
// Usage (server and loadgen must agree on the workload):
//
//	unischedd -nodes 200 -hours 24 -seed 1 &
//	loadgen -addr http://localhost:8080 -nodes 200 -hours 24 -seed 1 -speedup 1200
//
// Transient failures (connection refused/reset, 5xx responses) are retried
// with capped, jittered exponential backoff — submission is idempotent on
// the server (pod IDs dedupe), so retrying is always safe. Retries are
// counted in the summary.
//
// It reports achieved submission throughput, HTTP latency percentiles,
// and the server's placement metrics, and exits non-zero on lost
// submissions or transport errors. With -scrape it also checks the
// observability surface: /metrics must be valid Prometheus exposition,
// /v1/debug/decisions must hold traces when tracing is on, and
// /v1/metrics/history must have accumulated at least two samples.
//
// Crash-recovery chaos mode (-daemon) makes loadgen manage the server
// itself and prove the durability guarantees end to end:
//
//	loadgen -daemon ./unischedd -data-dir /tmp/wal -nodes 50 -hours 2 -seed 1 \
//	        -chaos-kill-after 200
//
// The protocol: boot the daemon durably, submit until -chaos-kill-after
// pods are accepted, kill -9 it mid-flight, restart it on the same data
// dir, resubmit the whole workload (survivors answer 409 duplicate, the
// lost fsync tail is re-accepted), and verify zero lost and zero
// duplicated submissions. Then it shuts the daemon down gracefully,
// restarts it once more, and checks the recovered state hash is
// bit-identical to the pre-shutdown one.
//
// Multi-tenant mode (-tenant-tokens, against unischedd -quota) replays
// the workload as the first tenant while the remaining tenants play
// adversaries; see tenants.go for the adversarial protocol and the
// -quota-check starvation-resistance assertion.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"unisched/internal/obs"
	"unisched/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		addr      = flag.String("addr", "http://localhost:8080", "unischedd base URL")
		tracePath = flag.String("trace", "", "load workload from JSON instead of generating")
		nodes     = flag.Int("nodes", 200, "number of hosts (must match the server)")
		hours     = flag.Int("hours", 24, "horizon in hours (must match the server)")
		seed      = flag.Int64("seed", 1, "seed (must match the server)")
		speedup   = flag.Float64("speedup", 0, "trace-time speedup; 0 submits as fast as possible")
		clients   = flag.Int("clients", 8, "concurrent HTTP clients")
		timeout   = flag.Duration("timeout", 5*time.Minute, "settle-poll timeout after the replay")
		retries   = flag.Int("retries", 4, "max retries per submission on transport errors and 5xx")
		scrape    = flag.Bool("scrape", false,
			"after the replay, scrape /metrics, /v1/debug/decisions, and /v1/metrics/history and fail on malformed or empty output")
		daemonPath = flag.String("daemon", "",
			"path to the unischedd binary: loadgen manages the server itself and runs the crash-recovery chaos protocol")
		dataDir    = flag.String("data-dir", "", "daemon durability directory (chaos mode; default: a temp dir)")
		killAfter  = flag.Int("chaos-kill-after", 200, "kill -9 the daemon after this many accepted submissions (chaos mode)")
		tenantToks = flag.String("tenant-tokens", "",
			"comma-separated name=token list enabling multi-tenant mode; the first tenant is the guaranteed primary, the rest are adversaries")
		adversarial = flag.Bool("adversarial", false,
			"flood the server with every adversary tenant's cloned BE pods before the primary replay (multi-tenant mode)")
		quotaFrac = flag.Float64("quota-check", 0,
			"assert the primary tenant's peak placed CPU reaches this fraction of min(guarantee, demand) and that quota preemptions fired; 0 disables")
		latCheck = flag.Bool("latency-check", false,
			"watch a sample of accepted pods to placement and assert the client-observed submit-to-placed latencies bracket the server's e2e histogram (server must run with -lifecycle-sample)")
	)
	flag.Parse()
	seedJitter(*seed)

	var w *trace.Workload
	var err error
	if *tracePath != "" {
		w, err = trace.LoadFile(*tracePath)
	} else {
		cfg := trace.DefaultConfig()
		cfg.Seed = *seed
		cfg.NumNodes = *nodes
		cfg.Horizon = int64(*hours) * 3600
		w, err = trace.Generate(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	pods := append([]*trace.Pod(nil), w.Pods...)
	sort.SliceStable(pods, func(i, j int) bool { return pods[i].Submit < pods[j].Submit })

	if *daemonPath != "" {
		runChaos(chaosConfig{
			daemon:    *daemonPath,
			dataDir:   *dataDir,
			nodes:     *nodes,
			hours:     *hours,
			seed:      *seed,
			clients:   *clients,
			retries:   *retries,
			killAfter: *killAfter,
			timeout:   *timeout,
		}, pods)
		return
	}

	if *tenantToks != "" {
		tenants, err := parseTenantTokens(*tenantToks)
		if err != nil {
			log.Fatal(err)
		}
		runMultiTenant(mtConfig{
			addr:        *addr,
			clients:     *clients,
			retries:     *retries,
			timeout:     *timeout,
			tenants:     tenants,
			adversarial: *adversarial,
			quotaFrac:   *quotaFrac,
		}, pods)
		return
	}

	log.Printf("replaying %d pods against %s with %d clients (speedup %g)",
		len(pods), *addr, *clients, *speedup)

	// Pacer feeds the client pool in trace order; clients post and tally.
	work := make(chan *trace.Pod, 4**clients)
	hc := &http.Client{Timeout: 30 * time.Second}
	var watcher *latWatcher
	if *latCheck {
		watcher = newLatWatcher(hc, *addr)
	}
	var wg sync.WaitGroup
	results := make([]clientResult, *clients)
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		results[i].watch = watcher
		go func(res *clientResult) {
			defer wg.Done()
			for p := range work {
				postPod(hc, *addr, p, res, *retries, "")
			}
		}(&results[i])
	}

	start := time.Now()
	for _, p := range pods {
		if *speedup > 0 {
			target := time.Duration(float64(p.Submit) / *speedup * float64(time.Second))
			if d := target - time.Since(start); d > 0 {
				time.Sleep(d)
			}
		}
		work <- p
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	var total clientResult
	for i := range results {
		total.merge(&results[i])
	}
	sent := total.accepted + total.shed + total.dup + total.errors
	fmt.Printf("submitted %d pods in %v (%.0f submissions/s)\n",
		sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	fmt.Printf("  accepted %d, shed %d, duplicate %d, retries %d, transport errors %d\n",
		total.accepted, total.shed, total.dup, total.retries, total.errors)
	sort.Slice(total.lat, func(i, j int) bool { return total.lat[i] < total.lat[j] })
	if len(total.lat) > 0 {
		fmt.Printf("  http latency p50 %v  p95 %v  p99 %v\n",
			pct(total.lat, 0.50), pct(total.lat, 0.95), pct(total.lat, 0.99))
	}

	// Wait for the engine to settle, then check conservation.
	sn, settled := waitSettled(hc, *addr, *timeout)
	fmt.Printf("server: placed %d (%.0f placements/s wall), completed %d, shed %d, "+
		"pending %d, conflicts %d, decision p99 %.3fms\n",
		sn.Placed, sn.PlacementsPerSec, sn.Completed, sn.Shed,
		sn.Pending, sn.CommitConflicts, sn.DecisionP99Ms)

	lost := sn.Submitted - (sn.Placed + sn.Completed + sn.Expired + sn.Exhausted + sn.Shed + int64(sn.Pending))
	// Placed pods that later completed/expired are counted once: States is
	// authoritative when present.
	if sn.States != nil {
		lost = sn.Submitted
		for _, v := range sn.States {
			lost -= v
		}
	}
	switch {
	case total.errors > 0:
		log.Fatalf("FAIL: %d transport errors", total.errors)
	case sn.Submitted != int64(total.accepted+total.shed):
		log.Fatalf("FAIL: server saw %d submissions, client sent %d accepted+shed",
			sn.Submitted, total.accepted+total.shed)
	case lost != 0:
		log.Fatalf("FAIL: %d submissions lost (states %v)", lost, sn.States)
	case !settled:
		log.Printf("WARN: engine still working after %v (pending %d); conservation holds", *timeout, sn.Pending)
	default:
		fmt.Println("OK: zero lost submissions")
	}

	if *scrape {
		if err := scrapeObservability(hc, *addr); err != nil {
			log.Fatalf("FAIL: %v", err)
		}
		fmt.Println("OK: observability endpoints healthy")
	}

	if *latCheck {
		if err := checkLatencyBracket(watcher, sn); err != nil {
			log.Fatalf("FAIL: %v", err)
		}
		fmt.Println("OK: client-observed latencies bracket the server-side placed spans")
	}
}

// checkLatencyBracket cross-checks the server's end-to-end placement
// latencies against what the clients saw. The watcher is a bounded
// sample and so says nothing about the server histogram's tail (a busy
// replay's late pods wait far longer than its early ones), but for each
// individual watched pod the client-observed latency — submit request to
// the first poll that sees it placed — must upper-bound the server's own
// placed span for that pod: the clock starts before the server stamps
// the submit and stops after placement became observable.
func checkLatencyBracket(w *latWatcher, sn metricsView) error {
	// Cross-process monotonic clocks measure durations consistently; the
	// tolerance covers timer resolution, not clock skew.
	const tolerance = 10 * time.Millisecond
	observed, pairs, missed := w.wait()
	fmt.Printf("latency check: watched %d pods to placement (%d not placed)\n", len(observed), missed)
	if len(observed) == 0 {
		return fmt.Errorf("latency check: no watched pod reached placement")
	}
	if sn.E2E == nil || sn.E2E.Count == 0 {
		return fmt.Errorf("latency check: server e2e histogram empty — is the server running with -lifecycle-sample?")
	}
	e := sn.E2E
	if e.P50Ms < 0 || e.P99Ms < 0 || e.MeanMs < 0 {
		return fmt.Errorf("latency check: negative server quantiles: p50 %.3fms p99 %.3fms mean %.3fms", e.P50Ms, e.P99Ms, e.MeanMs)
	}
	if e.P50Ms > e.P99Ms {
		return fmt.Errorf("latency check: server p50 %.3fms above p99 %.3fms", e.P50Ms, e.P99Ms)
	}
	fmt.Printf("  client-observed p50 %v  p95 %v  max %v\n",
		pct(observed, 0.50), pct(observed, 0.95), observed[len(observed)-1])
	fmt.Printf("  server e2e count %d  p50 %.3fms  p99 %.3fms  mean %.3fms\n",
		e.Count, e.P50Ms, e.P99Ms, e.MeanMs)
	if len(pairs) == 0 {
		return fmt.Errorf("latency check: no watched pod had a server-side timeline — is the server running with -lifecycle-sample 1?")
	}
	for _, p := range pairs {
		if p.client+tolerance < p.server {
			return fmt.Errorf("latency check: pod %d server placed span %v exceeds client-observed %v", p.pod, p.server, p.client)
		}
	}
	fmt.Printf("  %d per-pod timelines bracketed by their client-observed latencies\n", len(pairs))
	return nil
}

// latWatcher follows a sample of accepted pods from the submit request
// to the first status poll that sees them placed, producing client-side
// upper bounds on per-pod placement latency.
type latWatcher struct {
	hc   *http.Client
	addr string
	// slots caps concurrent followers; an accepted pod arriving while all
	// slots are busy is simply not watched (it is a sample, not a census).
	slots    chan struct{}
	inFlight sync.WaitGroup

	mu       sync.Mutex
	started  int
	observed []time.Duration
	pairs    []latPair
	missed   int // watched pods that ended shed/rejected or timed out
}

// latPair holds one watched pod's client-observed latency next to the
// server's own placed span from the pod's lifecycle timeline.
type latPair struct {
	pod            int
	client, server time.Duration
}

// maxWatched bounds the total pods followed so the status polling never
// becomes a load source of its own on long replays.
const maxWatched = 256

func newLatWatcher(hc *http.Client, addr string) *latWatcher {
	return &latWatcher{hc: hc, addr: addr, slots: make(chan struct{}, 8)}
}

// observe starts following one accepted pod, unless the watcher is
// saturated or the sample is already full.
func (w *latWatcher) observe(id int, submitted time.Time) {
	w.mu.Lock()
	if w.started >= maxWatched {
		w.mu.Unlock()
		return
	}
	select {
	case w.slots <- struct{}{}:
	default:
		w.mu.Unlock()
		return
	}
	w.started++
	w.mu.Unlock()
	w.inFlight.Add(1)
	go func() {
		defer func() { <-w.slots; w.inFlight.Done() }()
		deadline := time.Now().Add(60 * time.Second)
		for {
			var st struct {
				Phase string `json:"phase"`
			}
			err := getJSON(w.hc, fmt.Sprintf("%s/v1/pods/%d", w.addr, id), &st)
			if err == nil {
				switch st.Phase {
				case "placed", "done":
					d := time.Since(submitted)
					// Fetch the server's own view of this pod right away,
					// before the recorder's bounded timeline store evicts it.
					server, ok := w.placedSpan(id)
					w.mu.Lock()
					w.observed = append(w.observed, d)
					if ok {
						w.pairs = append(w.pairs, latPair{pod: id, client: d, server: server})
					}
					w.mu.Unlock()
					return
				case "shed", "exhausted", "rejected":
					w.mu.Lock()
					w.missed++
					w.mu.Unlock()
					return
				}
			}
			if time.Now().After(deadline) {
				w.mu.Lock()
				w.missed++
				w.mu.Unlock()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
}

// placedSpan asks the lifecycle timeline endpoint for the server-side
// placed span (submit to placement) of one pod. Works against a single
// daemon and a coordinator alike — the stitched reply nests the placed
// stage inside whichever process owns the pod. Returns false when the
// pod is not sampled (or tracing is off entirely).
func (w *latWatcher) placedSpan(id int) (time.Duration, bool) {
	var st struct {
		Processes []struct {
			Events []struct {
				Stage string `json:"stage"`
				DurNs int64  `json:"dur_ns"`
			} `json:"events"`
		} `json:"processes"`
	}
	if err := getJSON(w.hc, fmt.Sprintf("%s/v1/debug/pods/%d/timeline", w.addr, id), &st); err != nil {
		return 0, false
	}
	for _, proc := range st.Processes {
		for _, ev := range proc.Events {
			if ev.Stage == "placed" {
				return time.Duration(ev.DurNs), true
			}
		}
	}
	return 0, false
}

// wait blocks until every follower finished and returns the sorted
// client-observed latencies, the client/server per-pod pairs, and the
// count of watched-but-never-placed pods.
func (w *latWatcher) wait() ([]time.Duration, []latPair, int) {
	w.inFlight.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	sort.Slice(w.observed, func(i, j int) bool { return w.observed[i] < w.observed[j] })
	return w.observed, w.pairs, w.missed
}

// scrapeObservability exercises the telemetry surface after a replay:
// the Prometheus exposition must parse, the decision-trace ring must hold
// records, and the utilization history must have accumulated samples.
func scrapeObservability(hc *http.Client, addr string) error {
	resp, err := hc.Get(addr + "/metrics")
	if err != nil {
		return fmt.Errorf("scrape /metrics: %w", err)
	}
	err = obs.ValidateExposition(resp.Body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("/metrics exposition invalid: %w", err)
	}

	var dec struct {
		Enabled   bool  `json:"enabled"`
		Committed int64 `json:"committed"`
		Count     int   `json:"count"`
	}
	if err := getJSON(hc, addr+"/v1/debug/decisions?last=5", &dec); err != nil {
		return err
	}
	if dec.Enabled && (dec.Count == 0 || dec.Committed == 0) {
		return fmt.Errorf("/v1/debug/decisions: tracing enabled but no traces recorded")
	}

	var hist struct {
		Count   int `json:"count"`
		Samples []struct {
			T       int64 `json:"t"`
			UpNodes int   `json:"up_nodes"`
		} `json:"samples"`
	}
	if err := getJSON(hc, addr+"/v1/metrics/history", &hist); err != nil {
		return err
	}
	if hist.Count < 2 || len(hist.Samples) != hist.Count {
		return fmt.Errorf("/v1/metrics/history: %d samples (want >= 2)", hist.Count)
	}
	fmt.Printf("scrape: exposition valid, %d traces retained, %d history samples\n",
		dec.Count, hist.Count)
	return nil
}

func getJSON(hc *http.Client, url string, v any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("scrape %s: %w", url, err)
	}
	return nil
}

// clientResult tallies one client's outcomes.
type clientResult struct {
	accepted int
	shed     int
	dup      int
	errors   int
	retries  int
	lat      []time.Duration
	// watch, when set, follows accepted pods to placement (-latency-check).
	watch *latWatcher
}

func (r *clientResult) merge(o *clientResult) {
	r.accepted += o.accepted
	r.shed += o.shed
	r.dup += o.dup
	r.errors += o.errors
	r.retries += o.retries
	r.lat = append(r.lat, o.lat...)
}

// jitterSrc is the retry-jitter source, seeded from -seed so two loadgen
// runs with the same seed draw the same backoff schedule. A mutex guards
// it: *rand.Rand is not goroutine-safe and every client retries through
// here.
var (
	jitterMu  sync.Mutex
	jitterSrc = rand.New(rand.NewSource(1))
)

func seedJitter(seed int64) { jitterSrc = rand.New(rand.NewSource(seed)) }

// retryBackoff is the capped, jittered exponential backoff between
// submission attempts: 50ms·2ⁿ, capped at 2s, ±25% jitter so a restarting
// server is not hit by synchronized client retries.
func retryBackoff(attempt int) time.Duration {
	d := 50 * time.Millisecond << uint(attempt)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	jitterMu.Lock()
	j := jitterSrc.Int63n(int64(d)/2 + 1)
	jitterMu.Unlock()
	return d + time.Duration(j) - d/4
}

// postPod submits one pod, retrying transport errors (connection refused
// or reset while the server restarts) and 5xx responses. Each attempt
// rebuilds the request body; submission is idempotent server-side, so a
// retried request that already landed just answers 409 duplicate. token,
// when non-empty, is sent as a bearer token (multi-tenant mode).
func postPod(hc *http.Client, addr string, p *trace.Pod, res *clientResult, retries int, token string) {
	body, err := json.Marshal(p)
	if err != nil {
		res.errors++
		return
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest("POST", addr+"/v1/pods", bytes.NewReader(body))
		if err != nil {
			res.errors++
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		t0 := time.Now()
		resp, err := hc.Do(req)
		res.lat = append(res.lat, time.Since(t0))
		if err == nil {
			code := resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if code < 500 {
				switch code {
				case http.StatusAccepted:
					res.accepted++
					if res.watch != nil {
						res.watch.observe(p.ID, t0)
					}
				case http.StatusTooManyRequests:
					res.shed++
				case http.StatusConflict:
					res.dup++
				default:
					res.errors++
				}
				return
			}
		}
		if attempt >= retries {
			res.errors++
			return
		}
		res.retries++
		time.Sleep(retryBackoff(attempt))
	}
}

// metricsView mirrors the engine Snapshot fields loadgen consumes.
type metricsView struct {
	Submitted        int64            `json:"submitted"`
	Placed           int64            `json:"placed"`
	Completed        int64            `json:"completed"`
	Expired          int64            `json:"expired"`
	Exhausted        int64            `json:"exhausted"`
	Shed             int64            `json:"shed"`
	Pending          int              `json:"pending"`
	Running          int              `json:"running"`
	CommitConflicts  int64            `json:"commit_conflicts"`
	PlacementsPerSec float64          `json:"placements_per_sec"`
	DecisionP99Ms    float64          `json:"decision_p99_ms"`
	QuotaShed        int64            `json:"quota_shed"`
	QuotaPreempted   int64            `json:"quota_preempted"`
	States           map[string]int64 `json:"states"`
	E2E              *e2eView         `json:"e2e"`
}

// e2eView mirrors the engine's end-to-end placement-latency summary
// (present only when the server runs with lifecycle tracing on).
type e2eView struct {
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

func fetchMetrics(hc *http.Client, addr string) (metricsView, error) {
	var m metricsView
	resp, err := hc.Get(addr + "/v1/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// waitSettled polls the metrics endpoint until nothing is pending (or the
// timeout passes) and returns the last snapshot.
func waitSettled(hc *http.Client, addr string, timeout time.Duration) (metricsView, bool) {
	deadline := time.Now().Add(timeout)
	for {
		m, err := fetchMetrics(hc, addr)
		if err != nil {
			log.Printf("metrics poll: %v", err)
		} else if m.Pending == 0 {
			return m, true
		}
		if time.Now().After(deadline) {
			return m, false
		}
		time.Sleep(500 * time.Millisecond)
	}
}

func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// ---------------------------------------------------------------------------
// Crash-recovery chaos mode.

type chaosConfig struct {
	daemon    string
	dataDir   string
	nodes     int
	hours     int
	seed      int64
	clients   int
	retries   int
	killAfter int
	timeout   time.Duration
}

// daemonProc is one managed unischedd process with its captured stdout.
type daemonProc struct {
	cmd *exec.Cmd
	out *lockedBuffer
}

// lockedBuffer is a goroutine-safe sink for the daemon's stdout: os/exec
// writes from its copier goroutine while the chaos driver reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

const chaosPort = "127.0.0.1:18231"

func startDaemon(cfg chaosConfig) (*daemonProc, error) {
	out := &lockedBuffer{}
	cmd := exec.Command(cfg.daemon,
		"-addr", chaosPort,
		"-nodes", fmt.Sprint(cfg.nodes),
		"-hours", fmt.Sprint(cfg.hours),
		"-seed", fmt.Sprint(cfg.seed),
		"-workers", "2",
		"-speedup", "3000", // 10ms ticks: checkpoints actually get cut
		"-checkpoint-every", "20",
		"-fsync-every", "2ms",
		"-trace-sample", "0",
		"-data-dir", cfg.dataDir,
	)
	cmd.Stdout = out
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &daemonProc{cmd: cmd, out: out}, nil
}

func waitReady(hc *http.Client, addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := hc.Get(addr + "/readyz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if ok {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon not ready after %v", timeout)
}

// hashLine extracts `key=<hex>` from the daemon's stdout.
func hashLine(out, key string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, key+"=") {
			return strings.TrimPrefix(line, key+"=")
		}
	}
	return ""
}

// submitAll pushes every pod through the client pool and returns the tally.
func submitAll(hc *http.Client, addr string, pods []*trace.Pod, clients, retries, stopAfterAccepted int) clientResult {
	work := make(chan *trace.Pod, 4*clients)
	results := make([]clientResult, clients)
	var accepted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(res *clientResult) {
			defer wg.Done()
			for p := range work {
				before := res.accepted
				postPod(hc, addr, p, res, retries, "")
				if res.accepted > before && stopAfterAccepted > 0 {
					mu.Lock()
					accepted++
					mu.Unlock()
				}
			}
		}(&results[i])
	}
	for _, p := range pods {
		if stopAfterAccepted > 0 {
			mu.Lock()
			done := accepted >= int64(stopAfterAccepted)
			mu.Unlock()
			if done {
				break
			}
		}
		work <- p
	}
	close(work)
	wg.Wait()
	var total clientResult
	for i := range results {
		total.merge(&results[i])
	}
	return total
}

func runChaos(cfg chaosConfig, pods []*trace.Pod) {
	if cfg.dataDir == "" {
		dir, err := os.MkdirTemp("", "unischedd-chaos-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		cfg.dataDir = dir
	}
	addr := "http://" + chaosPort
	hc := &http.Client{Timeout: 30 * time.Second}
	log.Printf("chaos: %d pods, kill -9 after %d accepted, data dir %s",
		len(pods), cfg.killAfter, cfg.dataDir)

	// Phase 1: boot, submit until the kill threshold, kill -9 mid-flight.
	d1, err := startDaemon(cfg)
	if err != nil {
		log.Fatalf("FAIL: start daemon: %v", err)
	}
	if err := waitReady(hc, addr, 60*time.Second); err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	t1 := submitAll(hc, addr, pods, cfg.clients, cfg.retries, cfg.killAfter)
	log.Printf("chaos: phase 1 accepted %d (retries %d); killing daemon with SIGKILL", t1.accepted, t1.retries)
	d1.cmd.Process.Kill()
	d1.cmd.Wait()

	// Phase 2: restart on the same data dir, resubmit EVERYTHING. The
	// journal tail that had not been fsynced at the kill is gone; those
	// pods are accepted again, every survivor answers 409 duplicate.
	d2, err := startDaemon(cfg)
	if err != nil {
		log.Fatalf("FAIL: restart daemon: %v", err)
	}
	if err := waitReady(hc, addr, 60*time.Second); err != nil {
		log.Fatalf("FAIL: after kill -9: %v", err)
	}
	t2 := submitAll(hc, addr, pods, cfg.clients, cfg.retries, 0)
	log.Printf("chaos: phase 2 resubmitted %d pods: accepted %d, duplicate %d, shed %d, errors %d",
		len(pods), t2.accepted, t2.dup, t2.shed, t2.errors)
	sn, settled := waitSettled(hc, addr, cfg.timeout)
	lost := sn.Submitted
	for _, v := range sn.States {
		lost -= v
	}
	switch {
	case t2.errors > 0:
		log.Fatalf("FAIL: %d transport errors during resubmission", t2.errors)
	case sn.Submitted != int64(len(pods)):
		log.Fatalf("FAIL: server counts %d submissions, want %d — lost or duplicated admissions across the crash",
			sn.Submitted, len(pods))
	case lost != 0:
		log.Fatalf("FAIL: %d submissions lost after crash recovery (states %v)", lost, sn.States)
	case !settled:
		log.Printf("WARN: engine still working after %v (pending %d); conservation holds", cfg.timeout, sn.Pending)
	}
	fmt.Printf("chaos: zero lost, zero duplicated across kill -9 (submitted %d, running %d)\n",
		sn.Submitted, sn.Running)

	// Graceful shutdown cuts the final checkpoint and prints the state
	// hash.
	d2.cmd.Process.Signal(syscall.SIGTERM)
	d2.cmd.Wait()
	final := hashLine(d2.out.String(), "final_state_hash")
	if final == "" {
		log.Fatalf("FAIL: daemon printed no final_state_hash; stdout:\n%s", d2.out.String())
	}

	// Phase 3: boot once more and compare the recovered hash bit for bit.
	d3, err := startDaemon(cfg)
	if err != nil {
		log.Fatalf("FAIL: final restart: %v", err)
	}
	if err := waitReady(hc, addr, 60*time.Second); err != nil {
		log.Fatalf("FAIL: final restart: %v", err)
	}
	d3.cmd.Process.Signal(syscall.SIGTERM)
	d3.cmd.Wait()
	recovered := hashLine(d3.out.String(), "recovered_state_hash")
	if recovered == "" {
		log.Fatalf("FAIL: daemon printed no recovered_state_hash; stdout:\n%s", d3.out.String())
	}
	if recovered != final {
		log.Fatalf("FAIL: recovered state hash %s != pre-shutdown %s", recovered, final)
	}
	fmt.Printf("chaos: recovered state hash matches pre-shutdown hash (%s)\n", recovered)
	fmt.Println("OK: crash recovery preserved every placement")
}
