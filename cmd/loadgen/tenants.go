package main

// Multi-tenant adversarial mode: loadgen plays N tenants against one
// unischedd running with -quota. The first tenant in -tenant-tokens is the
// guaranteed primary; every other tenant is an adversary. With
// -adversarial the adversaries first flood the server with clones of the
// workload's best-effort pods (IDs remapped into disjoint ranges), and
// only then does the primary replay the real workload — the worst case for
// the primary's guarantee. While the engine works, loadgen polls
// /v1/quotas and tracks the primary's peak placed CPU; -quota-check
// asserts the peak reached the configured fraction of
// min(guarantee, demand) and that cross-queue quota preemptions fired —
// the end-to-end starvation-resistance proof.
//
//	unischedd -quota quota.json -nodes 16 -hours 2 -seed 7 &
//	loadgen -nodes 16 -hours 2 -seed 7 \
//	        -tenant-tokens "prod=tokA,spike=tokB,flood=tokC" \
//	        -adversarial -quota-check 0.5

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"unisched/internal/quota"
	"unisched/internal/trace"
)

// tenantSpec is one -tenant-tokens entry.
type tenantSpec struct {
	name  string
	token string
}

func parseTenantTokens(s string) ([]tenantSpec, error) {
	var out []tenantSpec
	for _, part := range strings.Split(s, ",") {
		name, tok, ok := strings.Cut(part, "=")
		if !ok || name == "" || tok == "" {
			return nil, fmt.Errorf("bad -tenant-tokens entry %q (want name=token)", part)
		}
		out = append(out, tenantSpec{name: name, token: tok})
	}
	return out, nil
}

type mtConfig struct {
	addr        string
	clients     int
	retries     int
	timeout     time.Duration
	tenants     []tenantSpec
	adversarial bool
	quotaFrac   float64
}

// mtSub is one pod to submit under one tenant's token.
type mtSub struct {
	p     *trace.Pod
	token string
}

// advIDStride separates each adversary's cloned pod IDs from the original
// workload's and from each other's.
const advIDStride = 10_000_000

// submitSubs pushes a batch through the client pool and returns the tally.
func submitSubs(hc *http.Client, addr string, subs []mtSub, clients, retries int) clientResult {
	work := make(chan mtSub, 4*clients)
	results := make([]clientResult, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(res *clientResult) {
			defer wg.Done()
			for s := range work {
				postPod(hc, addr, s.p, res, retries, s.token)
			}
		}(&results[i])
	}
	for _, s := range subs {
		work <- s
	}
	close(work)
	wg.Wait()
	var total clientResult
	for i := range results {
		total.merge(&results[i])
	}
	return total
}

// fetchTenantQuota reads the primary tenant's placed and guaranteed CPU
// from /v1/quotas.
func fetchTenantQuota(hc *http.Client, addr, token, tenant string) (placed, guaranteed float64, err error) {
	req, err := http.NewRequest("GET", addr+"/v1/quotas", nil)
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := hc.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("/v1/quotas: HTTP %d", resp.StatusCode)
	}
	var snap quota.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, 0, err
	}
	for _, tn := range snap.Root.Children {
		if tn.Name == tenant {
			return tn.Placed.CPU, tn.Guaranteed.CPU, nil
		}
	}
	return 0, 0, fmt.Errorf("/v1/quotas: tenant %q not in snapshot", tenant)
}

func runMultiTenant(cfg mtConfig, pods []*trace.Pod) {
	if len(cfg.tenants) < 2 {
		log.Fatal("FAIL: multi-tenant mode needs at least a primary and one adversary in -tenant-tokens")
	}
	primary, adversaries := cfg.tenants[0], cfg.tenants[1:]
	hc := &http.Client{Timeout: 30 * time.Second}

	// Adversary flood: clones of every BE pod per adversary, IDs remapped
	// into disjoint ranges. Tenant attribution comes from the token
	// server-side; the spec fields just keep the intent readable.
	var flood []mtSub
	if cfg.adversarial {
		for i, adv := range adversaries {
			for _, p := range pods {
				if p.SLO != trace.SLOBE {
					continue
				}
				q := *p
				q.ID = p.ID + (i+1)*advIDStride
				q.Tenant = adv.name
				flood = append(flood, mtSub{p: &q, token: adv.token})
			}
		}
	}
	primarySubs := make([]mtSub, 0, len(pods))
	var demandCPU float64
	for _, p := range pods {
		q := *p
		q.Tenant = primary.name
		primarySubs = append(primarySubs, mtSub{p: &q, token: primary.token})
		demandCPU += p.Request.CPU
	}

	log.Printf("multi-tenant: primary %q replays %d pods against %d adversaries (flood %d BE clones)",
		primary.name, len(primarySubs), len(adversaries), len(flood))

	floodRes := submitSubs(hc, cfg.addr, flood, cfg.clients, cfg.retries)
	if len(flood) > 0 {
		fmt.Printf("adversary flood: accepted %d, shed %d, errors %d\n",
			floodRes.accepted, floodRes.shed, floodRes.errors)
	}
	primRes := submitSubs(hc, cfg.addr, primarySubs, cfg.clients, cfg.retries)
	fmt.Printf("primary replay: accepted %d, shed %d, duplicate %d, errors %d\n",
		primRes.accepted, primRes.shed, primRes.dup, primRes.errors)

	// Poll until the engine settles, tracking the primary's peak placed
	// CPU — the guarantee must be reached while the adversaries still hold
	// the cluster, which only a mid-run sample can witness.
	var peak, guarantee float64
	var sn metricsView
	settled := false
	deadline := time.Now().Add(cfg.timeout)
	for {
		if placed, g, err := fetchTenantQuota(hc, cfg.addr, primary.token, primary.name); err == nil {
			guarantee = g
			if placed > peak {
				peak = placed
			}
		} else {
			log.Printf("quota poll: %v", err)
		}
		m, err := fetchMetrics(hc, cfg.addr)
		if err == nil {
			sn = m
			if m.Pending == 0 {
				settled = true
				break
			}
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}

	lost := sn.Submitted
	for _, v := range sn.States {
		lost -= v
	}
	fmt.Printf("server: placed %d, shed %d (quota %d), quota preemptions %d, pending %d\n",
		sn.Placed, sn.Shed, sn.QuotaShed, sn.QuotaPreempted, sn.Pending)
	fmt.Printf("primary %q: peak placed %.2f CPU of %.2f guaranteed (demand %.2f)\n",
		primary.name, peak, guarantee, demandCPU)

	switch {
	case floodRes.errors+primRes.errors > 0:
		log.Fatalf("FAIL: %d transport errors", floodRes.errors+primRes.errors)
	case lost != 0:
		log.Fatalf("FAIL: %d submissions lost (states %v)", lost, sn.States)
	case !settled:
		log.Printf("WARN: engine still working after %v (pending %d); conservation holds", cfg.timeout, sn.Pending)
	}

	if cfg.quotaFrac > 0 {
		want := guarantee
		if demandCPU < want {
			want = demandCPU
		}
		want *= cfg.quotaFrac
		if peak < want {
			log.Fatalf("FAIL: primary %q peaked at %.2f placed CPU, want >= %.2f (%.0f%% of min(guarantee %.2f, demand %.2f)) — starved by adversaries",
				primary.name, peak, want, 100*cfg.quotaFrac, guarantee, demandCPU)
		}
		if cfg.adversarial && sn.QuotaPreempted == 0 {
			log.Fatal("FAIL: adversarial run finished without a single cross-queue quota preemption")
		}
		fmt.Printf("OK: primary reached %.2f CPU (>= %.2f required), %d quota preemptions\n",
			peak, want, sn.QuotaPreempted)
	}
	fmt.Println("OK: multi-tenant replay complete, zero lost submissions")
}
