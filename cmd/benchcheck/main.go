// Command benchcheck is the CI perf-regression gate: it parses a fresh
// `go test -bench` run from stdin and compares one benchmark's metric
// against the committed baseline document (BENCH_engine.json), failing
// with a non-zero exit when the fresh value regresses beyond the
// tolerance:
//
//	go test -bench 'BenchmarkEngineThroughput' -benchtime 3x -run '^$' ./internal/engine \
//	    | benchcheck -baseline BENCH_engine.json \
//	                 -name BenchmarkEngineThroughput/workers=4 \
//	                 -metric placements/s -tolerance 10
//
// The metric is assumed higher-is-better (throughput); ns/op style
// lower-is-better checks invert via -lower-is-better.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"unisched/internal/benchfmt"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}

func metricOf(b *benchfmt.Benchmark, metric string) (float64, bool) {
	if metric == "ns/op" {
		return b.NsOp, b.NsOp != 0
	}
	v, ok := b.Metrics[metric]
	return v, ok
}

func main() {
	baseline := flag.String("baseline", "BENCH_engine.json", "committed baseline document")
	name := flag.String("name", "BenchmarkEngineThroughput/workers=4", "benchmark to gate on")
	metric := flag.String("metric", "placements/s", "metric unit to compare (ns/op or a custom unit)")
	tolerance := flag.Float64("tolerance", 10, "allowed regression in percent")
	lowerBetter := flag.Bool("lower-is-better", false, "treat the metric as lower-is-better (e.g. ns/op)")
	flag.Parse()

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fail("read baseline: %v", err)
	}
	var base benchfmt.Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fail("parse baseline %s: %v", *baseline, err)
	}
	bb := base.Find(*name)
	if bb == nil {
		fail("baseline %s has no benchmark %q", *baseline, *name)
	}
	baseVal, ok := metricOf(bb, *metric)
	if !ok {
		fail("baseline %q carries no metric %q", *name, *metric)
	}

	fresh, err := benchfmt.ParseStream(os.Stdin)
	if err != nil {
		fail("read bench output: %v", err)
	}
	fb := fresh.Find(*name)
	if fb == nil {
		fail("fresh run produced no benchmark %q (did the bench fail?)", *name)
	}
	freshVal, ok := metricOf(fb, *metric)
	if !ok {
		fail("fresh %q carries no metric %q", *name, *metric)
	}

	// Regression percentage, positive = worse than baseline.
	var regress float64
	if *lowerBetter {
		regress = (freshVal - baseVal) / baseVal * 100
	} else {
		regress = (baseVal - freshVal) / baseVal * 100
	}
	verdict := "OK"
	if regress > *tolerance {
		verdict = "FAIL"
	}
	fmt.Printf("benchcheck %s: %s %s baseline=%.0f fresh=%.0f regression=%+.1f%% tolerance=%.1f%%\n",
		verdict, *name, *metric, baseVal, freshVal, regress, *tolerance)
	if verdict == "FAIL" {
		os.Exit(1)
	}
}
