// Command benchcheck is the CI perf-regression gate: it parses a fresh
// `go test -bench` run from stdin and compares benchmark metrics
// against the committed baseline document (BENCH_engine.json), failing
// with a non-zero exit when a fresh value regresses beyond its
// tolerance — or when a benchmark the baseline knows about silently
// vanished from the fresh run.
//
//	go test -bench 'BenchmarkEngineThroughput|BenchmarkEngineSoak' -benchtime 3x -run '^$' ./internal/engine \
//	    | benchcheck -baseline BENCH_engine.json \
//	                 -require '^BenchmarkEngine(Throughput|Soak)/' \
//	                 -gate 'BenchmarkEngineThroughput/workers=4,placements/s,10' \
//	                 -gate 'BenchmarkEngineSoak/workers=4,placements/s,25'
//
// Each -gate is name,metric,tolerance-percent[,lower] — "lower" marks a
// lower-is-better metric (ns/op). Tolerances are per gate, so noisy
// soak metrics can run with a wider band than the headline throughput.
// Each -require is a regexp: every baseline benchmark matching it must
// appear in the fresh run, so a renamed or dropped benchmark fails the
// gate instead of passing by absence. The single-gate flags (-name,
// -metric, -tolerance, -lower-is-better) remain as a shorthand when no
// -gate is given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"unisched/internal/benchfmt"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}

func metricOf(b *benchfmt.Benchmark, metric string) (float64, bool) {
	if metric == "ns/op" {
		return b.NsOp, b.NsOp != 0
	}
	v, ok := b.Metrics[metric]
	return v, ok
}

// gate is one name/metric comparison with its own tolerance.
type gate struct {
	name        string
	metric      string
	tolerance   float64
	lowerBetter bool
}

func parseGate(s string) (gate, error) {
	f := strings.Split(s, ",")
	if len(f) < 3 || len(f) > 4 {
		return gate{}, fmt.Errorf("want name,metric,tolerance[,lower], got %q", s)
	}
	tol, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return gate{}, fmt.Errorf("tolerance %q: %v", f[2], err)
	}
	g := gate{name: f[0], metric: f[1], tolerance: tol}
	if len(f) == 4 {
		if f[3] != "lower" {
			return gate{}, fmt.Errorf("want \"lower\" as 4th field, got %q", f[3])
		}
		g.lowerBetter = true
	}
	return g, nil
}

// check compares one gate; returns a verdict line and whether it passed.
func (g gate) check(base, fresh *benchfmt.Report) (string, bool) {
	bb := base.Find(g.name)
	if bb == nil {
		return fmt.Sprintf("FAIL %s: baseline has no such benchmark", g.name), false
	}
	baseVal, ok := metricOf(bb, g.metric)
	if !ok {
		return fmt.Sprintf("FAIL %s: baseline carries no metric %q", g.name, g.metric), false
	}
	fb := fresh.Find(g.name)
	if fb == nil {
		return fmt.Sprintf("FAIL %s: missing from the fresh run (did the bench fail or get renamed?)", g.name), false
	}
	freshVal, ok := metricOf(fb, g.metric)
	if !ok {
		return fmt.Sprintf("FAIL %s: fresh run carries no metric %q", g.name, g.metric), false
	}
	// Regression percentage, positive = worse than baseline.
	var regress float64
	if g.lowerBetter {
		regress = (freshVal - baseVal) / baseVal * 100
	} else {
		regress = (baseVal - freshVal) / baseVal * 100
	}
	verdict := "OK"
	pass := regress <= g.tolerance
	if !pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s %s %s baseline=%.2f fresh=%.2f regression=%+.1f%% tolerance=%.1f%%",
		verdict, g.name, g.metric, baseVal, freshVal, regress, g.tolerance), pass
}

func main() {
	baseline := flag.String("baseline", "BENCH_engine.json", "committed baseline document")
	name := flag.String("name", "", "benchmark to gate on (shorthand for one -gate)")
	metric := flag.String("metric", "placements/s", "metric unit for -name (ns/op or a custom unit)")
	tolerance := flag.Float64("tolerance", 10, "allowed regression in percent for -name")
	lowerBetter := flag.Bool("lower-is-better", false, "treat the -name metric as lower-is-better (e.g. ns/op)")
	var gates []gate
	flag.Func("gate", "name,metric,tolerance[,lower] (repeatable)", func(s string) error {
		g, err := parseGate(s)
		if err != nil {
			return err
		}
		gates = append(gates, g)
		return nil
	})
	var requires []*regexp.Regexp
	flag.Func("require", "regexp: baseline benchmarks matching it must appear in the fresh run (repeatable)", func(s string) error {
		re, err := regexp.Compile(s)
		if err != nil {
			return err
		}
		requires = append(requires, re)
		return nil
	})
	flag.Parse()

	if *name != "" {
		gates = append(gates, gate{name: *name, metric: *metric, tolerance: *tolerance, lowerBetter: *lowerBetter})
	}
	if len(gates) == 0 && len(requires) == 0 {
		fail("nothing to check: pass -gate/-require (or -name)")
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fail("read baseline: %v", err)
	}
	var base benchfmt.Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fail("parse baseline %s: %v", *baseline, err)
	}
	fresh, err := benchfmt.ParseStream(os.Stdin)
	if err != nil {
		fail("read bench output: %v", err)
	}

	ok := true
	for _, re := range requires {
		for i := range base.Benchmarks {
			bn := base.Benchmarks[i].Name
			if re.MatchString(bn) && fresh.Find(bn) == nil {
				fmt.Printf("benchcheck FAIL %s: in baseline, matched -require %q, but missing from the fresh run\n", bn, re)
				ok = false
			}
		}
	}
	for _, g := range gates {
		line, pass := g.check(&base, &fresh)
		fmt.Printf("benchcheck %s\n", line)
		ok = ok && pass
	}
	if !ok {
		os.Exit(1)
	}
}
